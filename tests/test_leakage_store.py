"""Campaign store: shards, manifests, and lossless TraceSet round-trips."""

import os
import pickle

import numpy as np
import pytest

from repro.attack.config import AttackConfig
from repro.falcon.keygen import keygen
from repro.falcon.params import FalconParams
from repro.leakage.capture import CaptureCampaign
from repro.leakage.device import DeviceModel
from repro.leakage.store import CampaignStore, StoreError, TraceSource
from repro.leakage.traceset import TraceSet
from repro.leakage.trs import traceset_to_trs, trs_to_traceset


@pytest.fixture(scope="module")
def campaign():
    sk, _ = keygen(FalconParams.get(8), seed=b"store-tests")
    return CaptureCampaign(
        sk=sk,
        device=DeviceModel(noise_sigma=2.0, seed=7),
        n_traces=120,
        seed=31,
    )


@pytest.fixture(scope="module")
def store(campaign, tmp_path_factory):
    path = tmp_path_factory.mktemp("stores") / "campaign"
    return campaign.materialize(str(path))


class TestTraceSetRoundTrips:
    def test_save_load_preserves_everything(self, campaign, tmp_path):
        ts = campaign.capture(2)
        path = str(tmp_path / "ts.npz")
        ts.save(path)
        back = TraceSet.load(path)
        assert back.target_index == ts.target_index
        assert back.true_secret == ts.true_secret
        assert back.meta == ts.meta  # byte-exact, tuples included
        assert [s.name for s in back.segments] == [s.name for s in ts.segments]
        for a, b in zip(ts.segments, back.segments):
            np.testing.assert_array_equal(a.known_y, b.known_y)
            np.testing.assert_array_equal(a.traces, b.traces)
        assert back.layout.samples_per_step == ts.layout.samples_per_step

    def test_trs_round_trip_preserves_everything(self, campaign, tmp_path):
        ts = campaign.capture(1)
        paths = traceset_to_trs(ts, str(tmp_path / "export"))
        back = trs_to_traceset(paths)
        assert back.target_index == ts.target_index
        assert back.true_secret == ts.true_secret
        assert back.meta == ts.meta
        assert [s.name for s in back.segments] == [s.name for s in ts.segments]
        for a, b in zip(ts.segments, back.segments):
            np.testing.assert_array_equal(a.known_y, b.known_y)
            np.testing.assert_array_equal(a.traces, b.traces)

    def test_head_rescales_meta(self, campaign):
        ts = campaign.capture(0)
        sub = ts.head(50)
        assert sub.meta["n_requested"] == 50
        assert sub.meta["n_kept"] == tuple(seg.n_traces for seg in sub.segments)
        assert all(seg.n_traces <= 50 for seg in sub.segments)
        # untouched keys ride along; the original set is not mutated
        assert sub.meta["mode"] == ts.meta["mode"]
        assert ts.meta["n_requested"] == campaign.n_traces


class TestCampaignStore:
    def test_satisfies_trace_source_protocol(self, campaign, store):
        assert isinstance(store, TraceSource)
        assert isinstance(campaign, TraceSource)

    def test_disk_matches_live_capture(self, campaign, store):
        for j in (0, 3, 7):
            live = campaign.capture(j)
            disk = store.capture(j)
            assert disk.true_secret == live.true_secret
            assert disk.meta == live.meta
            for a, b in zip(live.segments, disk.segments):
                assert a.name == b.name
                np.testing.assert_array_equal(a.known_y, b.known_y)
                np.testing.assert_array_equal(a.traces, b.traces)

    def test_traces_are_memory_mapped(self, store):
        ts = store.capture(0)
        # Segment.__post_init__ wraps the memmap in an ndarray view;
        # the buffer is still the file mapping, not a RAM copy.
        assert isinstance(ts.segments[0].traces.base, np.memmap)

    def test_campaign_params_survive(self, campaign, store):
        assert store.n_targets == campaign.n_targets
        assert store.n_traces == campaign.n_traces
        assert store.mode == campaign.mode
        assert store.seed == campaign.seed
        assert store.device == campaign.device

    def test_store_pickles_as_path(self, store):
        clone = pickle.loads(pickle.dumps(store))
        np.testing.assert_array_equal(
            clone.capture(2).segments[0].traces, store.capture(2).segments[0].traces
        )

    def test_out_of_range_target(self, store):
        with pytest.raises(ValueError):
            store.capture(store.n_targets)

    def test_non_store_directory_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            CampaignStore(str(tmp_path))

    def test_materialize_resumes_from_existing_shards(self, campaign, store, tmp_path):
        # Simulate an interrupted materialization: shards exist, no manifest.
        partial = tmp_path / "partial"
        partial.mkdir()
        for name in sorted(os.listdir(store.path)):
            if name.startswith("target_000") and name < "target_00004":
                src = os.path.join(store.path, name)
                dst = partial / name
                dst.mkdir()
                for f in os.listdir(src):
                    (dst / f).write_bytes(open(os.path.join(src, f), "rb").read())
        mtimes = {
            str(p.relative_to(partial)): p.stat().st_mtime_ns
            for p in partial.glob("target_*/*.npy")
        }
        completed = CampaignStore.materialize(str(partial), campaign)
        # pre-existing complete shards were reused, not re-captured
        for p in partial.glob("target_*/*.npy"):
            rel = str(p.relative_to(partial))
            if rel in mtimes:
                assert p.stat().st_mtime_ns == mtimes[rel]
        assert completed.targets() == store.targets()

    def test_describe_store(self, store):
        from repro.analysis import describe_store

        text = describe_store(store)
        assert "8 targets" in text
        assert "complete" in text


class TestStoreDrivenAttack:
    def test_recover_from_store_matches_live(self, campaign, store):
        from repro.attack.coefficient import recover_coefficient

        cfg = AttackConfig()
        rec_live = recover_coefficient(campaign.capture(4), cfg)
        rec_disk = recover_coefficient(store.capture(4), cfg)
        assert rec_live.pattern == rec_disk.pattern
        assert rec_live.correct == rec_disk.correct


class TestBytesWrittenAccounting:
    """store.bytes_written must reflect the stored arrays' real nbytes,
    not a hard-coded 4-bytes-per-element float32 assumption."""

    def test_bytes_written_matches_stored_nbytes(self, campaign, tmp_path):
        from repro.obs import metrics

        with metrics.scoped_registry() as reg:
            store = campaign.materialize(str(tmp_path / "acct"))
        expected = 0
        for j in range(store.n_targets):
            ts = campaign.capture(j)
            expected += sum(
                int(seg.known_y.nbytes) + int(seg.traces.nbytes)
                for seg in ts.segments
            )
        assert reg.snapshot().counters["store.bytes_written"] == expected

    def test_non_float32_shard_counted_and_preserved(self, campaign, tmp_path):
        from repro.leakage.store import _write_shard
        from repro.obs import metrics

        ts = campaign.capture(0)
        for seg in ts.segments:
            # a hypothetical wide surface: float64 traces (assigned after
            # construction; __post_init__ normalizes only at build time)
            seg.traces = seg.traces.astype(np.float64)
        with metrics.scoped_registry() as reg:
            _write_shard(str(tmp_path / "wide"), ts)
        expected = sum(
            int(seg.known_y.nbytes) + int(seg.traces.nbytes)
            for seg in ts.segments
        )
        assert reg.snapshot().counters["store.bytes_written"] == expected
        stored = np.load(
            tmp_path / "wide" / "target_00000"
            / f"{ts.segments[0].name}.traces.npy"
        )
        assert stored.dtype == np.float64  # dtype survives the round trip
