"""Backend equivalence: python-ref and numpy-batch must be bit-exact.

The ``python-ref`` backend *is* the leakage model (one softfloat
``fpr_mul_trace`` per operand pair); ``numpy-batch`` re-implements the
whole pipeline as uint64/int64 array ops, including the integer
round-to-nearest-even and the fpr.c underflow-flush / overflow-saturate
semantics the host FPU does not share. Every intermediate column must
agree on every input — normal mid-range operands and the edge patterns
where the rounding and exponent paths actually branch.
"""

import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.falcon import FalconParams, keygen
from repro.fpr import emu
from repro.fpr.trace import MUL_STEP_LABELS, fpr_mul_trace
from repro.leakage import (
    BACKEND_NAMES,
    CaptureBackend,
    CaptureCampaign,
    CaptureConfig,
    DEFAULT_BACKEND,
    CampaignStore,
    DeviceModel,
    capture_coefficient,
    get_backend,
    synthesize_mul_traces,
)

REF = get_backend("python-ref")
BATCH = get_backend("numpy-batch")


def _patterns(rng, n, emin, emax):
    """Random sign/exponent/mantissa patterns with exponents in [emin, emax]."""
    s = rng.integers(0, 2, n).astype(np.uint64) << np.uint64(63)
    e = rng.integers(emin, emax + 1, n).astype(np.uint64) << np.uint64(52)
    m = rng.integers(0, 1 << 52, n, dtype=np.uint64)
    return s | e | m


def _assert_columns_equal(x, y):
    ref_vals = REF.step_values(x, y)
    batch_vals = BATCH.step_values(x, y)
    for i, label in enumerate(MUL_STEP_LABELS):
        np.testing.assert_array_equal(
            ref_vals[:, i], batch_vals[:, i], err_msg=f"column {label!r} diverged"
        )
    return batch_vals


class TestBackendEquivalence:
    @pytest.mark.parametrize(
        "ex_range,ey_range",
        [
            ((900, 1200), (900, 1200)),   # the campaign's operating regime
            ((1, 80), (1, 80)),           # products underflow-flush to zero
            ((1980, 2046), (1980, 2046)),  # products overflow-saturate to inf
            ((1, 2046), (1, 2046)),       # full normal range
        ],
        ids=["mid", "underflow", "overflow", "full"],
    )
    def test_random_batches_bit_exact(self, ex_range, ey_range):
        rng = np.random.default_rng(hash(("backend", ex_range, ey_range)) & 0xFFFF)
        x = _patterns(rng, 2000, *ex_range)
        y = _patterns(rng, 2000, *ey_range)
        batch_vals = _assert_columns_equal(x, y)
        # and the packed result is exactly the softfloat's, including the
        # flush/saturate cases where the host FPU would disagree
        for d in range(0, 2000, 397):
            assert int(batch_vals[d, -1]) == emu.fpr_mul(int(x[d]), int(y[d]))

    def test_scalar_secret_broadcasts(self):
        rng = np.random.default_rng(7)
        y = _patterns(rng, 257, 1000, 1050)
        x = int(np.float64(-3.714).view(np.uint64))
        _assert_columns_equal(x, y)

    def test_matches_per_value_trace(self):
        """Both backends reproduce fpr_mul_trace's step list row by row."""
        rng = np.random.default_rng(11)
        x = _patterns(rng, 64, 1, 2046)
        y = _patterns(rng, 64, 1, 2046)
        batch_vals = BATCH.step_values(x, y)
        for d in range(64):
            trace = fpr_mul_trace(int(x[d]), int(y[d]))
            assert trace.labels == list(MUL_STEP_LABELS)
            np.testing.assert_array_equal(
                batch_vals[d], np.array(trace.values, dtype=np.uint64)
            )

    def test_rounding_ties_and_carry(self):
        """Crafted significands hitting ties-to-even and the all-ones
        round-up that carries into a new exponent."""
        mants = [0, (1 << 52) - 1, 1, 0xABCDEF, (1 << 51) + 1, (1 << 26) - 1]
        pairs = [
            (emu.compose(sx, ex, mx), emu.compose(sy, ey, my))
            for mx in mants
            for my in mants
            for (sx, sy) in ((0, 0), (1, 0))
            for (ex, ey) in ((1023, 1023), (1, 1022), (2046, 1), (1500, 600))
        ]
        x = np.array([p[0] for p in pairs], dtype=np.uint64)
        y = np.array([p[1] for p in pairs], dtype=np.uint64)
        _assert_columns_equal(x, y)

    @given(
        st.integers(0, 1), st.integers(1, 2046), st.integers(0, (1 << 52) - 1),
        st.integers(0, 1), st.integers(1, 2046), st.integers(0, (1 << 52) - 1),
    )
    @settings(max_examples=300, deadline=None)
    def test_property_single_pairs(self, sx, ex, mx, sy, ey, my):
        x = emu.compose(sx, ex, mx)
        y = emu.compose(sy, ey, my)
        batch_vals = BATCH.step_values(
            np.array([x], dtype=np.uint64), np.array([y], dtype=np.uint64)
        )
        trace = fpr_mul_trace(x, y)
        np.testing.assert_array_equal(
            batch_vals[0], np.array(trace.values, dtype=np.uint64)
        )

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_zero_operand_rejected(self, backend):
        y = np.array([np.float64(1.5).view(np.uint64)])
        with pytest.raises(ValueError, match="nonzero normal"):
            get_backend(backend).step_values(0, y)

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_inf_operand_rejected(self, backend):
        inf = struct.unpack("<Q", struct.pack("<d", float("inf")))[0]
        y = np.array([np.float64(2.0).view(np.uint64)])
        with pytest.raises(ValueError, match="nonzero normal"):
            get_backend(backend).step_values(inf, y)


class TestBackendRegistry:
    def test_names_and_default(self):
        assert set(BACKEND_NAMES) == {"python-ref", "numpy-batch"}
        assert DEFAULT_BACKEND in BACKEND_NAMES

    def test_get_backend_roundtrip(self):
        for name in BACKEND_NAMES:
            backend = get_backend(name)
            assert isinstance(backend, CaptureBackend)
            assert backend.name == name
            assert get_backend(backend) is backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown capture backend"):
            get_backend("cuda-warp")
        with pytest.raises(ValueError, match="unknown capture backend"):
            CaptureCampaign(sk=_sk(), n_traces=10, backend="cuda-warp")

    def test_capture_config_applies(self):
        cfg = CaptureConfig(n_traces=33, mode="direct", seed=9, backend="python-ref")
        camp = CaptureCampaign(sk=_sk(), config=cfg)
        assert (camp.n_traces, camp.mode, camp.seed, camp.backend) == (
            33, "direct", 9, "python-ref",
        )


@pytest.fixture(scope="module")
def kp():
    return keygen(FalconParams.get(8), seed=b"backend")


def _sk():
    return keygen(FalconParams.get(8), seed=b"backend")[0]


class TestCaptureUnderBothBackends:
    def test_tracesets_byte_identical(self, kp):
        """Same seed, either backend: the trace sets must match byte for
        byte — backend choice is a speed knob, never a data change."""
        sk, _ = kp
        ref_ts = capture_coefficient(sk, 0, n_traces=120, seed=4, backend="python-ref")
        fast_ts = capture_coefficient(sk, 0, n_traces=120, seed=4, backend="numpy-batch")
        assert ref_ts.meta == fast_ts.meta
        assert ref_ts.true_secret == fast_ts.true_secret
        for a, b in zip(ref_ts.segments, fast_ts.segments):
            assert a.name == b.name
            assert a.known_y.tobytes() == b.known_y.tobytes()
            assert a.traces.tobytes() == b.traces.tobytes()

    def test_synthesize_backend_param(self):
        dev = DeviceModel(noise_sigma=0.0)
        y = (np.random.default_rng(3).standard_normal(40) + 2.5).view(np.uint64)
        x = int(np.float64(1.618).view(np.uint64))
        t_ref, v_ref = synthesize_mul_traces(x, y, dev, backend="python-ref")
        t_fast, v_fast = synthesize_mul_traces(x, y, dev, backend="numpy-batch")
        np.testing.assert_array_equal(v_ref, v_fast)
        np.testing.assert_array_equal(t_ref, t_fast)

    def test_store_roundtrip_records_backend(self, kp, tmp_path):
        """Materializing under either backend yields byte-identical
        shards; the manifest records which backend produced them."""
        sk, _ = kp
        stores = {}
        for backend in BACKEND_NAMES:
            camp = CaptureCampaign(sk=sk, n_traces=60, seed=5, backend=backend)
            stores[backend] = camp.materialize(str(tmp_path / backend))
        assert stores["python-ref"].backend == "python-ref"
        assert stores["numpy-batch"].backend == "numpy-batch"
        for j in stores["python-ref"].targets():
            a = stores["python-ref"].capture(j, mmap=False)
            b = stores["numpy-batch"].capture(j, mmap=False)
            assert a.meta == b.meta
            for seg_a, seg_b in zip(a.segments, b.segments):
                assert seg_a.known_y.tobytes() == seg_b.known_y.tobytes()
                assert seg_a.traces.tobytes() == seg_b.traces.tobytes()

    def test_reopened_store_reports_backend(self, kp, tmp_path):
        sk, _ = kp
        camp = CaptureCampaign(sk=sk, n_traces=40, seed=6, backend="python-ref")
        camp.materialize(str(tmp_path / "s"))
        assert CampaignStore(str(tmp_path / "s")).backend == "python-ref"
