"""Tests for the ChaCha20 PRNG, including cross-validation against the
`cryptography` package's ChaCha20 when available."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import ChaCha20Prng, SystemRng, chacha20_block


class TestChaCha20Block:
    def test_block_length(self):
        assert len(chacha20_block(bytes(32), 0, bytes(12))) == 64

    def test_counter_changes_block(self):
        k, n = bytes(32), bytes(12)
        assert chacha20_block(k, 0, n) != chacha20_block(k, 1, n)

    def test_key_changes_block(self):
        n = bytes(12)
        assert chacha20_block(bytes(32), 0, n) != chacha20_block(b"\x01" * 32, 0, n)

    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            chacha20_block(bytes(31), 0, bytes(12))

    def test_bad_nonce_length(self):
        with pytest.raises(ValueError):
            chacha20_block(bytes(32), 0, bytes(8))

    def test_against_cryptography_package(self):
        """Bit-exact keystream vs an independent ChaCha20 implementation."""
        algorithms = pytest.importorskip("cryptography.hazmat.primitives.ciphers.algorithms")
        from cryptography.hazmat.primitives.ciphers import Cipher

        key = bytes(range(32))
        nonce = b"\x00\x00\x00\x09" + bytes(8)
        counter = 7
        # cryptography's ChaCha20 takes a 16-byte nonce: counter || nonce.
        full_nonce = struct.pack("<I", counter) + nonce
        cipher = Cipher(algorithms.ChaCha20(key, full_nonce), mode=None)
        keystream = cipher.encryptor().update(bytes(64))
        assert chacha20_block(key, counter, nonce) == keystream


class TestChaCha20Prng:
    def test_deterministic(self):
        a = ChaCha20Prng(b"seed").randombytes(100)
        b = ChaCha20Prng(b"seed").randombytes(100)
        assert a == b

    def test_seed_types(self):
        for seed in (b"x", 1234, "text"):
            assert len(ChaCha20Prng(seed).randombytes(16)) == 16

    def test_different_seeds_differ(self):
        assert ChaCha20Prng(b"a").randombytes(32) != ChaCha20Prng(b"b").randombytes(32)

    def test_stream_continuity(self):
        rng = ChaCha20Prng(b"s")
        first = rng.randombytes(10)
        second = rng.randombytes(10)
        both = ChaCha20Prng(b"s").randombytes(20)
        assert first + second == both

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            ChaCha20Prng(b"s").randombytes(-1)

    @given(st.integers(-50, 50), st.integers(0, 100))
    def test_randint_in_range(self, lo, span):
        rng = ChaCha20Prng(b"ri")
        v = rng.randint(lo, lo + span)
        assert lo <= v <= lo + span

    def test_randint_empty_range_rejected(self):
        with pytest.raises(ValueError):
            ChaCha20Prng(b"s").randint(5, 4)

    def test_randint_uniformity(self):
        """Chi-square on a small range at 5 sigma-ish tolerance."""
        rng = ChaCha20Prng(b"uniform")
        n, k = 8000, 8
        counts = [0] * k
        for _ in range(n):
            counts[rng.randint(0, k - 1)] += 1
        expected = n / k
        chi2 = sum((c - expected) ** 2 / expected for c in counts)
        assert chi2 < 35  # df=7, p ~ 1e-5

    def test_uniform_in_unit_interval(self):
        rng = ChaCha20Prng(b"u")
        vals = [rng.uniform() for _ in range(1000)]
        assert all(0.0 <= v < 1.0 for v in vals)
        assert 0.4 < sum(vals) / len(vals) < 0.6

    def test_random_u64_range(self):
        rng = ChaCha20Prng(b"u64")
        assert all(0 <= rng.random_u64() < 1 << 64 for _ in range(100))


class TestSystemRng:
    def test_interface(self):
        rng = SystemRng()
        assert len(rng.randombytes(8)) == 8
        assert 0 <= rng.randint(0, 10) <= 10
        assert 0.0 <= rng.uniform() < 1.0
        assert 0 <= rng.random_u64() < 1 << 64

    def test_randint_empty_range_rejected(self):
        with pytest.raises(ValueError):
            SystemRng().randint(2, 1)
