"""Tests for the ML-profiled attack (numpy MLP classifier)."""

import numpy as np
import pytest

from repro.attack.hypotheses import hyp_s_lo, known_limbs
from repro.attack.ml_profiled import MlpClassifier, ml_profile_step, ml_scores
from repro.falcon import FalconParams, keygen
from repro.leakage import CaptureCampaign, DeviceModel


@pytest.fixture(scope="module")
def setup():
    sk, _ = keygen(FalconParams.get(8), seed=b"mlp")
    prof = CaptureCampaign(sk=sk, n_traces=5000, device=DeviceModel(seed=61), seed=62).capture(0)
    atk = CaptureCampaign(sk=sk, n_traces=800, device=DeviceModel(seed=63), seed=64).capture(0)
    return prof, atk


class TestMlpClassifier:
    def test_learns_separable_toy_problem(self):
        rng = np.random.default_rng(0)
        x = np.concatenate([rng.normal(-3, 1, (300, 2)), rng.normal(3, 1, (300, 2))])
        y = np.array([0] * 300 + [1] * 300)
        clf = MlpClassifier(classes=np.array([0, 1]), hidden=8, epochs=30, seed=1)
        clf.fit(x, y)
        assert clf.accuracy(x, y) > 0.95

    def test_log_proba_normalized(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((100, 3))
        y = rng.integers(0, 3, 100)
        clf = MlpClassifier(classes=np.array([0, 1, 2]), hidden=4, epochs=5).fit(x, y)
        probs = np.exp(clf.log_proba(x))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-6)

    def test_untrained_rejected(self):
        clf = MlpClassifier(classes=np.array([0, 1]))
        with pytest.raises(ValueError):
            clf.log_proba(np.zeros((1, 2)))

    def test_label_shape_mismatch(self):
        clf = MlpClassifier(classes=np.array([0, 1]))
        with pytest.raises(ValueError):
            clf.fit(np.zeros((5, 2)), np.zeros(4))

    def test_unknown_class_rejected(self):
        clf = MlpClassifier(classes=np.array([0, 1]))
        with pytest.raises(ValueError):
            clf.fit(np.zeros((3, 2)), np.array([0, 1, 7]))


class TestMlProfiledAttack:
    def test_classifier_tracks_hw(self, setup):
        prof, _ = setup
        clf = ml_profile_step(prof, "s_lo", epochs=40, seed=3)
        # the classifier should beat chance substantially on its own data
        from repro.fpr.trace import MUL_STEP_LABELS
        from repro.leakage.synth import mul_step_values
        from repro.utils.bits import hamming_weight_array

        seg = prof.segments[0]
        values = mul_step_values(prof.true_secret, seg.known_y)
        hw = hamming_weight_array(values[:, MUL_STEP_LABELS.index("s_lo")])
        window = seg.traces[:, prof.layout.slice_of("s_lo")]
        acc = clf.accuracy(window, hw)
        assert acc > 2.0 / len(clf.classes)

    def test_recovers_secret_limb(self, setup):
        prof, atk = setup
        clf = ml_profile_step(prof, "s_lo", epochs=40, seed=3)
        sig = (atk.true_secret & ((1 << 52) - 1)) | (1 << 52)
        true_lo = sig & ((1 << 25) - 1)
        rng = np.random.default_rng(4)
        cands = np.unique(
            np.concatenate([[true_lo], rng.integers(1, 1 << 25, 60)]).astype(np.uint64)
        )
        seg = atk.segments[0]
        y_lo, y_hi = known_limbs(seg.known_y)
        hyp = hyp_s_lo(y_lo, y_hi, cands)
        res = ml_scores(clf, seg.traces[:, atk.layout.slice_of("s_lo")], hyp, cands)
        assert res.best_guess == true_lo

    def test_hypothesis_shape_validated(self, setup):
        prof, _ = setup
        clf = ml_profile_step(prof, "s_lo", epochs=2, seed=3)
        with pytest.raises(ValueError):
            ml_scores(clf, np.zeros((5, 1)), np.zeros((4, 1)), np.arange(1))
