"""Tests for the CPA distinguisher and hypothesis builders."""

import numpy as np
import pytest

from repro.attack.cpa import CpaResult, combine_scores, run_cpa, significance_threshold
from repro.attack.hypotheses import (
    hyp_exp_biased,
    hyp_exp_out,
    hyp_exp_sum,
    hyp_product,
    hyp_s_lo,
    hyp_sign,
    known_exponent,
    known_limbs,
    known_sign,
)
from repro.utils.bits import hamming_weight


def patterns_of(values):
    return np.asarray(values, dtype=np.float64).view(np.uint64)


class TestKnownExtractors:
    def test_known_limbs(self):
        y = patterns_of([1.5])  # significand 1.5 -> 0x18000000000000
        lo, hi = known_limbs(y)
        m = (1 << 52) | (1 << 51)
        assert int(lo[0]) == m & ((1 << 25) - 1)
        assert int(hi[0]) == m >> 25

    def test_known_exponent_and_sign(self):
        y = patterns_of([-2.0])
        assert int(known_exponent(y)[0]) == 1024
        assert int(known_sign(y)[0]) == 1


class TestHypothesisBuilders:
    def test_hyp_product_values(self):
        known = np.array([3], dtype=np.uint64)
        guesses = np.array([0, 1, 5], dtype=np.uint64)
        hyp = hyp_product(known, guesses)
        assert list(hyp[0]) == [0, 2, 4]  # HW(0), HW(3), HW(15)

    def test_hyp_product_masked(self):
        known = np.array([0xFFFFFF], dtype=np.uint64)
        guesses = np.array([1], dtype=np.uint64)
        assert hyp_product(known, guesses, mask_bits=4)[0, 0] == 4

    def test_mask_property(self):
        """Masked hypothesis depends only on the guess mod 2^m."""
        rng = np.random.default_rng(0)
        known = rng.integers(1, 1 << 25, 50).astype(np.uint64)
        g1 = np.array([0b1011], dtype=np.uint64)
        g2 = np.array([0b1011 | (1 << 20)], dtype=np.uint64)
        m = 4
        np.testing.assert_array_equal(
            hyp_product(known, g1, mask_bits=m), hyp_product(known, g2, mask_bits=m)
        )

    def test_hyp_s_lo_matches_trace_semantics(self):
        from repro.fpr.trace import fpr_mul_trace

        x, y = 3.7, -1.2
        bx = int(patterns_of([x])[0])
        t = fpr_mul_trace(bx, int(patterns_of([y])[0]))
        y_lo, y_hi = known_limbs(patterns_of([y]))
        d = t.value("load_x_lo")
        hyp = hyp_s_lo(y_lo, y_hi, np.array([d], dtype=np.uint64))
        assert hyp[0, 0] == hamming_weight(t.value("s_lo"))

    def test_hyp_exp_sum_values(self):
        y = patterns_of([2.0])  # E_y = 1024
        hyp = hyp_exp_sum(y, np.array([1023], dtype=np.uint64))
        assert hyp[0, 0] == hamming_weight(1023 + 1024)

    def test_hyp_exp_biased_values(self):
        y = patterns_of([2.0])
        hyp = hyp_exp_biased(y, np.array([1023], dtype=np.uint64))
        assert hyp[0, 0] == hamming_weight((1023 + 1024 - 2100) & 0xFFFFFFFF)

    def test_hyp_exp_out_exact(self):
        """With the true significand, the correct guess predicts the
        result exponent exactly."""
        x, ys = -3.75, [1.1, 0.2, 123.4]
        bx = int(patterns_of([x])[0])
        sig = ((bx & ((1 << 52) - 1)) | (1 << 52))
        true_e = (bx >> 52) & 0x7FF
        y = patterns_of(ys)
        hyp = hyp_exp_out(y, np.array([true_e], dtype=np.uint64), sig)
        for d, yv in enumerate(ys):
            expected = (patterns_of([x * yv])[0] >> np.uint64(52)) & np.uint64(0x7FF)
            assert hyp[d, 0] == hamming_weight(int(expected))

    def test_hyp_exp_out_validates_significand(self):
        with pytest.raises(ValueError):
            hyp_exp_out(patterns_of([1.0]), np.array([5], dtype=np.uint64), 123)

    def test_hyp_sign_complementary(self):
        y = patterns_of([1.0, -1.0, 2.0])
        hyp = hyp_sign(y)
        np.testing.assert_array_equal(hyp[:, 0] ^ hyp[:, 1], [1, 1, 1])


class TestRunCpa:
    def _planted(self, d=2000, g=16, noise=1.0, seed=0):
        """Traces leak HW(secret * known); return cpa over all guesses."""
        rng = np.random.default_rng(seed)
        known = rng.integers(1, 1 << 20, d).astype(np.uint64)
        secret = 11
        leak = hamming_weight_array_local(known * np.uint64(secret)).astype(float)
        traces = (leak + rng.normal(0, noise, d)).reshape(-1, 1)
        guesses = np.arange(1, g + 1, dtype=np.uint64)
        hyp = hyp_product(known, guesses)
        return run_cpa(hyp, traces, guesses), secret

    def test_recovers_planted_secret(self):
        res, secret = self._planted()
        assert res.best_guess == secret

    def test_scores_shape_and_ranking(self):
        res, secret = self._planted()
        assert res.scores.shape == (16,)
        assert res.guesses[res.ranking[0]] == secret
        assert res.top(3)[0][0] == secret

    def test_significance(self):
        res, secret = self._planted(noise=0.5)
        sig = res.significant_guesses()
        assert secret in sig

    def test_threshold_matches_module_function(self):
        res, _ = self._planted()
        assert res.threshold() == significance_threshold(res.n_traces)

    def test_signed_ranking(self):
        rng = np.random.default_rng(3)
        d = 1000
        known = rng.integers(0, 2, d).astype(np.uint64) << np.uint64(63)
        hyp = hyp_sign(known)
        # device leaks sign_out = s_y ^ 1 (secret sign = 1)
        leak = (known >> np.uint64(63)).astype(float) * -1 + 1
        traces = (leak + rng.normal(0, 0.5, d)).reshape(-1, 1)
        res = run_cpa(hyp, traces, np.array([0, 1]), signed=True)
        assert res.best_guess == 1

    def test_combine_scores(self):
        r1, _ = self._planted(seed=1)
        r2, _ = self._planted(seed=2)
        combined = combine_scores([r1, r2])
        assert combined.shape == (16,)
        np.testing.assert_allclose(combined, r1.scores + r2.scores)

    def test_combine_mismatched_guesses_rejected(self):
        r1, _ = self._planted()
        r2 = CpaResult(
            guesses=np.arange(5), corr=np.zeros((5, 1)), n_traces=10
        )
        with pytest.raises(ValueError):
            combine_scores([r1, r2])

    def test_combine_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_scores([])


def hamming_weight_array_local(v):
    from repro.utils.bits import hamming_weight_array

    return hamming_weight_array(v)
