"""Farm end-to-end: worker kill/resume bit-identity, quota, control plane."""

import json
import multiprocessing
import os
import signal
import time
import urllib.error
import urllib.request

import pytest

from repro.farm.control import serve_http
from repro.farm.queue import FarmQueue
from repro.farm.service import FarmLimits, FarmService
from repro.farm.spec import CampaignSpec, JobState
from repro.farm.worker import result_payload, run_campaign, worker_loop
from repro.leakage.capture import CaptureConfig

N_TRACES = 450
SEED = 61


def farm_spec(key_seed: str, target: str = "fpr-mul") -> CampaignSpec:
    return CampaignSpec(
        key_seed=key_seed,
        n=8,
        capture=CaptureConfig(n_traces=N_TRACES, seed=SEED, target=target),
        noise_sigma=2.0,
        device_seed=17,
    )


def _wait_for(predicate, timeout_s: float = 90.0, what: str = "condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    pytest.fail(f"timed out waiting for {what}")


class TestFarmEndToEnd:
    """The acceptance scenario: concurrent mixed-target campaigns, one
    worker SIGKILLed mid-job, everything finishes bit-identical to
    direct ``full_attack`` runs."""

    def test_kill_mid_job_then_bit_identical_completion(self, tmp_path):
        root = str(tmp_path / "farm")
        queue = FarmQueue(root)
        specs = {
            "alpha": farm_spec("alpha"),
            "beta": farm_spec("beta", target="samplerz"),
            "gamma": farm_spec("gamma"),
        }
        jobs = {name: queue.submit(s) for name, s in specs.items()}
        first = jobs["alpha"].job_id

        # A throttled worker leases the first job; we SIGKILL it once it
        # has checkpointed a couple of coefficients — no cleanup handler
        # runs, exactly like an OOM kill or power loss.
        victim = multiprocessing.Process(
            target=worker_loop,
            args=(root, "doomed"),
            kwargs={"lease_ttl": 1.0, "drain": True, "max_jobs": 1,
                    "throttle_s": 0.4},
        )
        victim.start()
        _wait_for(
            lambda: len(list(queue.session_dir(first).glob("coeff_*.pkl"))) >= 2,
            what="the doomed worker to checkpoint two coefficients",
        )
        os.kill(victim.pid, signal.SIGKILL)
        victim.join()

        # mid-flight status reflects the claim (a lease from a now-dead
        # worker, one running job, the rest pending)
        status = queue.status()
        assert status["counts"]["running"] == 1
        assert status["counts"]["pending"] == 2
        assert status["leases"][first]["worker"] == "doomed"

        time.sleep(1.1)  # lease TTL passes with no heartbeats
        assert queue.requeue_expired() == [first]
        survivors = list(queue.session_dir(first).glob("coeff_*.pkl"))
        assert len(survivors) >= 2, "kill must not destroy finished checkpoints"
        assert queue.get(first).state is JobState.PENDING

        # a successor drains the whole queue, resuming the killed job
        finished = worker_loop(root, "successor", lease_ttl=30.0, drain=True)
        assert finished == 3

        for name, job in jobs.items():
            done = queue.get(job.job_id)
            assert done.state is JobState.DONE, done.error
            assert done.result["succeeded"] is True
            direct = result_payload(run_campaign(specs[name]))
            assert done.result["fingerprint"] == direct["fingerprint"], (
                f"farm result for {name} is not bit-identical to the "
                "direct full_attack run"
            )
        # the successor replayed the survivors instead of recomputing
        resumed = queue.get(first)
        assert resumed.attempts == 2
        assert resumed.result["checkpoints_restored"] >= 2
        # final status: all done, nothing leased, stores accounted
        status = queue.status()
        assert status["counts"]["done"] == 3
        assert status["leases"] == {}
        assert status["store_bytes"] > 0

    def test_cancel_mid_job_then_resume_bit_identical(self, tmp_path):
        root = str(tmp_path / "farm")
        queue = FarmQueue(root)
        spec = farm_spec("delta")
        job = queue.submit(spec)
        worker = multiprocessing.Process(
            target=worker_loop,
            args=(root, "w1"),
            kwargs={"lease_ttl": 30.0, "drain": True, "throttle_s": 0.3},
        )
        worker.start()
        _wait_for(
            lambda: len(list(queue.session_dir(job.job_id).glob("coeff_*.pkl"))) >= 1,
            what="the worker to checkpoint one coefficient",
        )
        queue.cancel(job.job_id)
        worker.join(timeout=90)
        assert worker.exitcode == 0
        canceled = queue.get(job.job_id)
        assert canceled.state is JobState.CANCELED
        checkpoints = len(list(queue.session_dir(job.job_id).glob("coeff_*.pkl")))
        assert checkpoints >= 1

        queue.resume(job.job_id)
        assert worker_loop(root, "w2", lease_ttl=30.0, drain=True) == 1
        done = queue.get(job.job_id)
        assert done.state is JobState.DONE
        assert done.result["checkpoints_restored"] >= checkpoints
        direct = result_payload(run_campaign(spec))
        assert done.result["fingerprint"] == direct["fingerprint"]


@pytest.fixture(scope="module")
def drained_farm(tmp_path_factory):
    """A 2-worker FarmService run to completion over two campaigns."""
    root = str(tmp_path_factory.mktemp("farm-service"))
    queue = FarmQueue(root)
    a = queue.submit(farm_spec("service-a"))
    b = queue.submit(farm_spec("service-b", target="samplerz"))
    service = FarmService(root, limits=FarmLimits(lease_ttl=30.0), n_workers=2)
    status = service.run_to_completion()
    return root, queue, service, status, a, b


class TestFarmService:
    def test_service_drains_queue_with_worker_pool(self, drained_farm):
        _, queue, _, status, a, b = drained_farm
        assert status["counts"]["done"] == 2
        assert status["counts"]["failed"] == 0
        for job in (a, b):
            done = queue.get(job.job_id)
            assert done.state is JobState.DONE
            assert done.result["succeeded"] is True

    def test_health_snapshot_shape(self, drained_farm):
        _, _, service, _, _, _ = drained_farm
        health = service.health()
        assert health["queue"]["counts"]["done"] == 2
        assert health["limits"]["max_concurrent"] == 4
        assert health["workers_alive"] == 0
        assert "counters" in health["metrics"]

    def test_store_quota_evicts_oldest_completed(self, drained_farm):
        root, queue, _, _, a, b = drained_farm
        used = queue.store_bytes()
        assert used > 0
        first_done = min(
            queue.jobs(), key=lambda j: j.done_seq or 0
        )
        service = FarmService(
            root,
            limits=FarmLimits(max_store_bytes=used - 1, lease_ttl=30.0),
            n_workers=0,
        )
        evicted = service.enforce_store_quota()
        assert evicted == [first_done.job_id]
        assert not queue.store_dir(first_done.job_id).exists()
        assert queue.get(first_done.job_id).store_evicted is True
        # the result and checkpoints survive the eviction
        assert queue.get(first_done.job_id).result["succeeded"] is True
        assert list(queue.session_dir(first_done.job_id).glob("coeff_*.pkl"))
        # under quota now: the second store is untouched
        other = b.job_id if first_done.job_id == a.job_id else a.job_id
        assert queue.store_dir(other).exists()

    def test_memory_pressure_degrades_to_serial(self, tmp_path, monkeypatch):
        service = FarmService(str(tmp_path / "farm"), job_workers=4, n_workers=0)
        monkeypatch.setattr(
            "repro.farm.service.available_memory_bytes", lambda: 1
        )
        assert service._effective_job_workers() == 1
        assert service.degraded is True
        monkeypatch.setattr(
            "repro.farm.service.available_memory_bytes", lambda: 1 << 40
        )
        assert service._effective_job_workers() == 4
        assert service.degraded is False


class TestHTTPControlPlane:
    def _get(self, url):
        with urllib.request.urlopen(url) as resp:
            return json.loads(resp.read())

    def _post(self, url, payload=None):
        data = None if payload is None else json.dumps(payload).encode()
        req = urllib.request.Request(url, data=data, method="POST")
        with urllib.request.urlopen(req) as resp:
            return json.loads(resp.read())

    def test_http_round_trip(self, tmp_path):
        root = str(tmp_path / "farm")
        FarmQueue(root)  # initialize the layout
        server = serve_http(root)
        host, port = server.server_address[0], server.server_address[1]
        base = f"http://{host}:{port}"
        try:
            job = self._post(base + "/submit", farm_spec("http").to_jsonable())
            assert job["state"] == "pending"
            job_id = job["job_id"]

            status = self._get(base + "/status")
            assert status["counts"]["pending"] == 1
            assert self._get(base + "/jobs")[0]["job_id"] == job_id
            assert self._get(f"{base}/jobs/{job_id}")["job_id"] == job_id

            assert self._post(f"{base}/jobs/{job_id}/cancel")["state"] == "canceled"
            assert self._post(f"{base}/jobs/{job_id}/resume")["state"] == "pending"

            # journal streaming with offset paging: a second poll from the
            # returned offset sees only what happened since
            page = self._get(base + "/journal")
            assert [e["event"] for e in page["events"]] == [
                "submitted", "cancel_requested", "resumed",
            ]
            again = self._get(f"{base}/journal?offset={page['offset']}")
            assert again["events"] == []

            health = self._get(base + "/health")
            assert "queue" in health and "metrics" in health

            with pytest.raises(urllib.error.HTTPError) as err:
                self._get(f"{base}/jobs/no-such-job")
            assert err.value.code == 404
            with pytest.raises(urllib.error.HTTPError) as err:
                self._post(f"{base}/jobs/{job_id}/resume")  # pending: refused
            assert err.value.code == 409
        finally:
            server.shutdown()
