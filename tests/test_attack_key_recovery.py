"""Tests for key reconstruction and forgery from recovered coefficients."""

import numpy as np
import pytest

from repro.attack.key_recovery import (
    KeyRecoveryError,
    recover_f,
    recover_g_from_public,
    repair_exponents,
)
from repro.falcon import FalconParams, keygen, verify
from repro.leakage.capture import fft_to_doubles
from repro.math import fft, poly


@pytest.fixture(scope="module")
def kp():
    return keygen(FalconParams.get(16), seed=b"kr")


def true_patterns(sk):
    doubles = fft_to_doubles(fft.fft(sk.f))
    return [int(np.float64(v).view(np.uint64)) for v in doubles]


class TestRecoverF:
    def test_exact_patterns_invert(self, kp):
        sk, _ = kp
        assert recover_f(true_patterns(sk)) == sk.f

    def test_corrupt_patterns_rejected(self, kp):
        sk, _ = kp
        pats = true_patterns(sk)
        # force a huge exponent: the coefficient explodes, invFFT cannot
        # be near-integral
        pats[3] = (pats[3] & ~(0x7FF << 52)) | (1500 << 52)
        with pytest.raises(KeyRecoveryError):
            recover_f(pats)


class TestRecoverG:
    def test_recovers_true_g(self, kp):
        sk, pk = kp
        g = recover_g_from_public(sk.f, pk)
        assert poly.mod_q(g, pk.params.q) == poly.mod_q(sk.g, pk.params.q)

    def test_wrong_f_rejected(self, kp):
        sk, pk = kp
        wrong = list(sk.f)
        wrong[0] += 1
        with pytest.raises(KeyRecoveryError):
            recover_g_from_public(wrong, pk)


class TestRepairExponents:
    def test_identity_when_top1_correct(self, kp):
        sk, _ = kp
        pats = true_patterns(sk)
        cands = [[p, p ^ (3 << 52)] for p in pats]
        assert repair_exponents(cands) == pats

    def test_fixes_single_wrong_exponent(self, kp):
        sk, _ = kp
        pats = true_patterns(sk)
        cands = [[p] for p in pats]
        true5 = pats[5]
        wrong5 = true5 ^ (1 << 54)  # exponent off by 4
        cands[5] = [wrong5, true5]
        repaired = repair_exponents(cands)
        assert repaired[5] == true5
        assert repaired == pats

    def test_fixes_multiple_wrong_exponents(self, kp):
        sk, _ = kp
        pats = true_patterns(sk)
        cands = [[p] for p in pats]
        for j, delta in ((2, 1), (9, 2), (13, 5)):
            true_p = pats[j]
            wrong = ((true_p >> 52) + delta) << 52 | (true_p & ((1 << 52) - 1)) | (
                true_p & (1 << 63)
            )
            cands[j] = [wrong, true_p]
        repaired = repair_exponents(cands)
        assert repaired == pats

    def test_returns_best_effort_without_truth(self, kp):
        """If the true pattern is absent, repair returns *some* choice."""
        sk, _ = kp
        pats = true_patterns(sk)
        cands = [[p] for p in pats]
        cands[0] = [pats[0] ^ (1 << 53)]  # truth not available
        out = repair_exponents(cands)
        assert len(out) == len(pats)


class TestMagnitudeFilter:
    def test_high_aliases_rejected_tiny_kept(self, kp):
        """The plausibility band is asymmetric: +16-octave exponent
        aliases (which can fool the integrality decoder when several
        doubles share one wrong scale) are rejected, while genuinely
        tiny coefficients from cancellation survive."""
        import math

        from repro.attack.key_recovery import _filter_by_magnitude

        sk, _ = kp
        params = sk.params
        center = 1023 + math.log2(math.sqrt(params.n / 2.0) * params.sigma_fg)
        true_exp = int(center)  # a double right at the physical scale
        mant = 0x123456789ABCD

        def pat(exp):
            return (exp << 52) | mant

        kept = _filter_by_magnitude(
            [pat(true_exp), pat(true_exp + 16), pat(true_exp - 16), pat(true_exp - 10)],
            params,
        )
        assert pat(true_exp) in kept
        assert pat(true_exp + 16) not in kept   # alias above: impossible
        assert pat(true_exp - 16) not in kept   # far below the band too
        assert pat(true_exp - 10) in kept       # tiny but possible

    def test_never_returns_empty(self, kp):
        from repro.attack.key_recovery import _filter_by_magnitude

        sk, _ = kp
        only_implausible = [(2000 << 52) | 1]
        assert _filter_by_magnitude(only_implausible, sk.params) == only_implausible


@pytest.fixture(scope="module")
def attack_report():
    """One full end-to-end attack shared by the assertions below."""
    from repro.attack import full_attack

    sk, pk = keygen(FalconParams.get(8), seed=b"e2e-test")
    report = full_attack(sk, pk, n_traces=6000, message=b"forged by test")
    return sk, pk, report


class TestParallelEngine:
    """The worker-process fan-out must be invisible in the results."""

    @pytest.fixture(scope="class")
    def campaign(self):
        from repro.leakage import CaptureCampaign, DeviceModel

        sk, _ = keygen(FalconParams.get(8), seed=b"par")
        return CaptureCampaign(sk=sk, n_traces=600, device=DeviceModel(), seed=41)

    def test_parallel_bit_identical_to_serial(self, campaign):
        from repro.attack import AttackConfig, recover_coefficients

        serial, s_records = recover_coefficients(campaign, AttackConfig(n_workers=1))
        par, p_records = recover_coefficients(campaign, AttackConfig(n_workers=2))
        assert [r.pattern for r in par] == [r.pattern for r in serial]
        assert [r.sign.bit for r in par] == [r.sign.bit for r in serial]
        assert [r.exponent.biased_exponent for r in par] == [
            r.exponent.biased_exponent for r in serial
        ]
        # observability rides along, in target order, on both paths
        assert [r.target_index for r in s_records] == list(range(8))
        assert [r.target_index for r in p_records] == list(range(8))
        assert [r.n_traces_kept for r in p_records] == [r.n_traces_kept for r in s_records]
        assert all(r.elapsed_seconds > 0 for r in p_records)

    def test_progress_events_fire_per_coefficient(self, campaign):
        from repro.attack import AttackConfig, recover_coefficients

        events = []
        recover_coefficients(
            campaign, AttackConfig(n_workers=2), progress_callback=events.append
        )
        coeff_events = [e for e in events if e.stage == "coefficient"]
        assert len(coeff_events) == 8
        assert sorted(e.record.target_index for e in coeff_events) == list(range(8))
        assert [e.completed for e in coeff_events] == list(range(1, 9))
        assert all(e.total == 8 for e in coeff_events)

    def test_trace_accounting_reflects_kept_rows(self, campaign):
        """Records carry the post-filter row counts the CPA actually saw
        (the capture layer drops non-normal operands), not the request."""
        from repro.attack import AttackConfig, recover_coefficients

        _, records = recover_coefficients(campaign, AttackConfig())
        for rec in records:
            assert rec.n_traces_requested == 600
            assert len(rec.n_traces_kept) == 2  # one count per captured segment
            assert all(0 < kept <= 600 for kept in rec.n_traces_kept)
            assert rec.n_traces_used == sum(rec.n_traces_kept)


class _FailingSource:
    """Picklable TraceSource proxy that fails one target's capture.

    Module-level so ProcessPoolExecutor can ship it to workers; every
    fingerprint-relevant attribute delegates to the wrapped campaign,
    so a session bound through the proxy resumes with the real one.
    """

    def __init__(self, inner, fail_index):
        self.inner = inner
        self.fail_index = fail_index

    def capture(self, target_index):
        if target_index == self.fail_index:
            raise RuntimeError("injected capture failure")
        return self.inner.capture(target_index)

    @property
    def n_targets(self):
        return self.inner.n_targets

    @property
    def n_traces(self):
        return self.inner.n_traces

    @property
    def target(self):
        return self.inner.target

    @property
    def mode(self):
        return self.inner.mode

    @property
    def seed(self):
        return self.inner.seed

    @property
    def device(self):
        return self.inner.device


class TestFailurePathPreservesSiblings:
    """Regression: one raising future must not discard its siblings'
    finished work — their checkpoints survive and a resume skips them."""

    def test_failed_batch_preserves_sibling_checkpoints(self, tmp_path):
        from repro.attack import AttackConfig, recover_coefficients
        from repro.attack.session import AttackSession
        from repro.leakage import CaptureCampaign, DeviceModel

        sk, _ = keygen(FalconParams.get(8), seed=b"par-fail")
        campaign = CaptureCampaign(
            sk=sk, n_traces=300, device=DeviceModel(), seed=43
        )
        cfg = AttackConfig(n_workers=2)
        sess = tmp_path / "sess"
        with pytest.raises(RuntimeError, match="injected capture failure"):
            recover_coefficients(
                _FailingSource(campaign, fail_index=0), cfg,
                session=AttackSession(sess),
            )
        saved = sorted(int(p.stem.split("_")[1]) for p in sess.glob("coeff_*.pkl"))
        assert saved, "siblings in flight when target 0 failed must be checkpointed"
        assert 0 not in saved  # the failing target itself never finished

        # resume against the healthy campaign: every checkpointed sibling
        # replays from disk instead of being re-attacked
        restored = []

        def cb(ev):
            if ev.stage == "coefficient" and ev.message == "restored from checkpoint":
                restored.append(ev.record.target_index)

        recs, _ = recover_coefficients(
            campaign, cfg, session=AttackSession(sess), progress_callback=cb
        )
        assert sorted(restored) == saved
        clean, _ = recover_coefficients(campaign, AttackConfig(n_workers=1))
        assert [r.pattern for r in recs] == [r.pattern for r in clean]


class TestPicklableProbe:
    def test_verdict_cached_per_object(self):
        import gc

        from repro.attack import key_recovery as kr

        class Probe:
            reduced = 0

            def __reduce__(self):
                type(self).reduced += 1
                return (dict, ())

        p = Probe()
        assert kr._picklable(p) is True
        assert Probe.reduced == 1
        assert kr._picklable(p) is True
        assert Probe.reduced == 1  # cached: no second full traversal
        key = id(p)
        assert key in kr._PICKLE_PROBES
        del p
        gc.collect()
        assert key not in kr._PICKLE_PROBES  # weakref evicts dead entries

    def test_unpicklable_object_cached_false(self):
        from repro.attack import key_recovery as kr

        class Holder:
            def __init__(self):
                self.fn = lambda: None  # closures do not pickle

        h = Holder()
        assert kr._picklable(h) is False
        assert kr._picklable(h) is False  # cached verdict, same answer

    def test_probe_streams_instead_of_materializing(self):
        """The probe must not build the full pickle byte string."""
        import pickle as _pickle

        from repro.attack import key_recovery as kr

        calls = {"dumps": 0}
        orig = _pickle.dumps

        def counting_dumps(*a, **kw):
            calls["dumps"] += 1
            return orig(*a, **kw)

        _pickle.dumps = counting_dumps
        try:
            assert kr._picklable((1, 2, 3)) is True
        finally:
            _pickle.dumps = orig
        assert calls["dumps"] == 0


class TestEndToEnd:
    def test_key_recovered(self, attack_report):
        """The paper's headline claim at laptop scale (n=8, 6k traces)."""
        sk, _, report = attack_report
        assert report.key_correct, "secret key f not recovered"
        assert report.key_recovery.f == sk.f
        assert report.key_recovery.g == sk.g
        assert report.n_coefficients == 8

    def test_forgery_verifies(self, attack_report):
        _, _, report = attack_report
        assert report.forgery_verifies, "forged signature rejected"
        assert "YES" in report.summary()

    def test_recovered_key_signs_arbitrary_messages(self, attack_report):
        from repro.falcon.sign import sign

        _, pk, report = attack_report
        sig = sign(report.key_recovery.recovered_sk, b"another message", seed=3)
        assert verify(pk, b"another message", sig)

    def test_ntru_equation_on_recovered_key(self, attack_report):
        _, pk, report = attack_report
        kr = report.key_recovery
        lhs = poly.sub(poly.mul(kr.f, kr.big_g), poly.mul(kr.g, kr.big_f))
        assert lhs == poly.constant(pk.params.q, pk.params.n)
