"""Tests for key reconstruction and forgery from recovered coefficients."""

import numpy as np
import pytest

from repro.attack.key_recovery import (
    KeyRecoveryError,
    recover_f,
    recover_g_from_public,
    repair_exponents,
)
from repro.falcon import FalconParams, keygen, verify
from repro.leakage.capture import fft_to_doubles
from repro.math import fft, poly


@pytest.fixture(scope="module")
def kp():
    return keygen(FalconParams.get(16), seed=b"kr")


def true_patterns(sk):
    doubles = fft_to_doubles(fft.fft(sk.f))
    return [int(np.float64(v).view(np.uint64)) for v in doubles]


class TestRecoverF:
    def test_exact_patterns_invert(self, kp):
        sk, _ = kp
        assert recover_f(true_patterns(sk)) == sk.f

    def test_corrupt_patterns_rejected(self, kp):
        sk, _ = kp
        pats = true_patterns(sk)
        # force a huge exponent: the coefficient explodes, invFFT cannot
        # be near-integral
        pats[3] = (pats[3] & ~(0x7FF << 52)) | (1500 << 52)
        with pytest.raises(KeyRecoveryError):
            recover_f(pats)


class TestRecoverG:
    def test_recovers_true_g(self, kp):
        sk, pk = kp
        g = recover_g_from_public(sk.f, pk)
        assert poly.mod_q(g, pk.params.q) == poly.mod_q(sk.g, pk.params.q)

    def test_wrong_f_rejected(self, kp):
        sk, pk = kp
        wrong = list(sk.f)
        wrong[0] += 1
        with pytest.raises(KeyRecoveryError):
            recover_g_from_public(wrong, pk)


class TestRepairExponents:
    def test_identity_when_top1_correct(self, kp):
        sk, _ = kp
        pats = true_patterns(sk)
        cands = [[p, p ^ (3 << 52)] for p in pats]
        assert repair_exponents(cands) == pats

    def test_fixes_single_wrong_exponent(self, kp):
        sk, _ = kp
        pats = true_patterns(sk)
        cands = [[p] for p in pats]
        true5 = pats[5]
        wrong5 = true5 ^ (1 << 54)  # exponent off by 4
        cands[5] = [wrong5, true5]
        repaired = repair_exponents(cands)
        assert repaired[5] == true5
        assert repaired == pats

    def test_fixes_multiple_wrong_exponents(self, kp):
        sk, _ = kp
        pats = true_patterns(sk)
        cands = [[p] for p in pats]
        for j, delta in ((2, 1), (9, 2), (13, 5)):
            true_p = pats[j]
            wrong = ((true_p >> 52) + delta) << 52 | (true_p & ((1 << 52) - 1)) | (
                true_p & (1 << 63)
            )
            cands[j] = [wrong, true_p]
        repaired = repair_exponents(cands)
        assert repaired == pats

    def test_returns_best_effort_without_truth(self, kp):
        """If the true pattern is absent, repair returns *some* choice."""
        sk, _ = kp
        pats = true_patterns(sk)
        cands = [[p] for p in pats]
        cands[0] = [pats[0] ^ (1 << 53)]  # truth not available
        out = repair_exponents(cands)
        assert len(out) == len(pats)


@pytest.fixture(scope="module")
def attack_report():
    """One full end-to-end attack shared by the assertions below."""
    from repro.attack import full_attack

    sk, pk = keygen(FalconParams.get(8), seed=b"e2e-test")
    report = full_attack(sk, pk, n_traces=6000, message=b"forged by test")
    return sk, pk, report


class TestEndToEnd:
    def test_key_recovered(self, attack_report):
        """The paper's headline claim at laptop scale (n=8, 6k traces)."""
        sk, _, report = attack_report
        assert report.key_correct, "secret key f not recovered"
        assert report.key_recovery.f == sk.f
        assert report.key_recovery.g == sk.g
        assert report.n_coefficients == 8

    def test_forgery_verifies(self, attack_report):
        _, _, report = attack_report
        assert report.forgery_verifies, "forged signature rejected"
        assert "YES" in report.summary()

    def test_recovered_key_signs_arbitrary_messages(self, attack_report):
        from repro.falcon.sign import sign

        _, pk, report = attack_report
        sig = sign(report.key_recovery.recovered_sk, b"another message", seed=3)
        assert verify(pk, b"another message", sig)

    def test_ntru_equation_on_recovered_key(self, attack_report):
        _, pk, report = attack_report
        kr = report.key_recovery
        lhs = poly.sub(poly.mul(kr.f, kr.big_g), poly.mul(kr.g, kr.big_f))
        assert lhs == poly.constant(pk.params.q, pk.params.n)
