"""Masking-aware taint (share/mask kinds, SF005/SF006), the component
lattice behind leak-class inference, and the CT007 variant drift checks.

Fixture tests pin exact rule IDs and line numbers; lattice tests pass a
custom :class:`TaintConfig` so fixture qualnames act as component
sources the way ``repro.fpr.emu.decompose`` does in the real tree.
"""

from __future__ import annotations

import json
import os
import textwrap

import pytest

from tests.sast_util import by_rule, findings_for, line_of, load_fixture

from repro.sast.cli import main
from repro.sast.findings import EXIT_CLEAN, EXIT_FINDINGS, Finding
from repro.sast.taint import TaintConfig, run_taint
from repro.sast.variants import (
    ResidualRecord,
    VariantSpec,
    check_variants_static,
    normalize_line,
    parse_variants,
)

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_CONTRACT = os.path.join(_REPO_ROOT, "leakage-contract.json")


# -- share/mask kinds ------------------------------------------------------


def test_blinded_value_is_share_and_stays_quiet(tmp_path):
    """secret ^ fresh mask degrades to a share: branching on it or
    feeding it to a variable-time op is statistically safe and must not
    fire SF001/SF003."""
    src = """\
    def blind(sk, ctx):
        m = ctx.fresh_mask("m", sk.f[0], 64)
        s = sk.f[0] ^ m
        if s & 1:
            acc = 1
        q = s % 3
        return q
    """
    findings = findings_for(tmp_path, {"masked.py": src})
    assert by_rule(findings, "SF001") == []
    assert by_rule(findings, "SF003") == []
    assert by_rule(findings, "SF005") == []


def test_unblinded_control_still_fires(tmp_path):
    """Same flow without the blind: the baseline rules must still see
    the raw secret (the share exemption is not a blanket waiver)."""
    src = """\
    def leak(sk):
        s = sk.f[0]
        if s & 1:
            acc = 1
        q = s % 3
        return q
    """
    findings = findings_for(tmp_path, {"raw.py": src})
    assert [f.line for f in by_rule(findings, "SF001")] == [line_of(src, "if s & 1")]
    assert [f.line for f in by_rule(findings, "SF003")] == [line_of(src, "q = s % 3")]


def test_mask_reuse_fires_sf005(tmp_path):
    """One fresh_mask call site blinding two distinct secrets is mask
    reuse: the XOR of the two shares would cancel the mask."""
    src = """\
    def reuse(sk, ctx):
        m = ctx.fresh_mask("m", 0, 64)
        a = sk.f[0] ^ m
        b = sk.g[0] ^ m
        return a, b
    """
    findings = findings_for(tmp_path, {"reuse.py": src})
    sf = by_rule(findings, "SF005")
    assert [f.line for f in sf] == [line_of(src, "b = sk.g[0] ^ m")]
    assert "reuse" in sf[0].message.lower()


def test_share_recombination_restores_secret(tmp_path):
    """XORing a share with the mask that blinds it re-exposes the
    secret: SF005 at the unmask, then SF001 on the recovered value."""
    src = """\
    def unmask(sk, ctx):
        m = ctx.fresh_mask("m", 0, 64)
        a = sk.f[0] ^ m
        v = a ^ m
        if v & 1:
            acc = 1
        return acc
    """
    findings = findings_for(tmp_path, {"unmask.py": src})
    assert [f.line for f in by_rule(findings, "SF005")] == [line_of(src, "v = a ^ m")]
    assert [f.line for f in by_rule(findings, "SF001")] == [line_of(src, "if v & 1")]


def test_sibling_shares_with_common_mask_recombine(tmp_path):
    """Share mask-sets accumulate through re-blinds, so the XOR of two
    shares whose histories overlap cancels the common mask (SF005) and
    the result is secret again."""
    src = """\
    def fold(sk, ctx):
        m1 = ctx.fresh_mask("m1", 0, 64)
        a = sk.f[0] ^ m1
        m2 = ctx.fresh_mask("m2", 0, 64)
        b = a ^ m2
        d = a ^ b
        if d & 1:
            acc = 1
        return acc
    """
    findings = findings_for(tmp_path, {"fold.py": src})
    assert [f.line for f in by_rule(findings, "SF005")] == [line_of(src, "d = a ^ b")]
    assert [f.line for f in by_rule(findings, "SF001")] == [line_of(src, "if d & 1")]


# -- component lattice / leak-class inference ------------------------------


_LATTICE_CONFIG = TaintConfig(
    component_sources={"pkg.fp.decompose": ("sign", "exponent", "mantissa")},
    source_components={"pkg.samp.draw": "sampler"},
)

_FP_SRC = """\
def decompose(x):  # sast: source
    return (x >> 63) & 1, (x >> 52) & 2047, x & 4503599627370495
"""


def _lattice_findings(tmp_path, use_src: str) -> list[Finding]:
    project = load_fixture(
        tmp_path, {"fp.py": _FP_SRC, "use.py": use_src}
    )
    return run_taint(project, _LATTICE_CONFIG)


def test_mantissa_product_classifies_mantissa_mul(tmp_path):
    src = """\
    from pkg.fp import decompose

    def step(x, y):
        sx, ex, mx = decompose(x)
        sy, ey, my = decompose(y)
        if mx * my:
            acc = 1
        return acc
    """
    sf = by_rule(_lattice_findings(tmp_path, src), "SF001")
    assert [(f.line, f.leak_class) for f in sf] == [
        (line_of(src, "if mx * my"), "mantissa-mul")
    ]


def test_mantissa_sum_classifies_mantissa_add(tmp_path):
    src = """\
    from pkg.fp import decompose

    def step(x, y):
        sx, ex, mx = decompose(x)
        sy, ey, my = decompose(y)
        if mx + my:
            acc = 1
        return acc
    """
    sf = by_rule(_lattice_findings(tmp_path, src), "SF001")
    assert [(f.line, f.leak_class) for f in sf] == [
        (line_of(src, "if mx + my"), "mantissa-add")
    ]


def test_exponent_arithmetic_keeps_exponent_class(tmp_path):
    src = """\
    from pkg.fp import decompose

    def step(x, y):
        sx, ex, mx = decompose(x)
        sy, ey, my = decompose(y)
        if ex + ey - 1023:
            acc = 1
        return acc
    """
    sf = by_rule(_lattice_findings(tmp_path, src), "SF001")
    assert [(f.line, f.leak_class) for f in sf] == [
        (line_of(src, "if ex + ey"), "exponent")
    ]


def test_sign_bit_branch_classifies_sign(tmp_path):
    src = """\
    from pkg.fp import decompose

    def step(x):
        sx, ex, mx = decompose(x)
        if sx:
            acc = 1
        return acc
    """
    sf = by_rule(_lattice_findings(tmp_path, src), "SF001")
    assert [(f.line, f.leak_class) for f in sf] == [(line_of(src, "if sx"), "sign")]


def test_mixed_component_join_drops_to_generic(tmp_path):
    """Exponent x mantissa has no common datapath ancestor: the finding
    carries no leak class, so the contract falls back to the keyword
    heuristic (leak_class_source: heuristic)."""
    src = """\
    from pkg.fp import decompose

    def step(x):
        sx, ex, mx = decompose(x)
        if ex * mx:
            acc = 1
        return acc
    """
    sf = by_rule(_lattice_findings(tmp_path, src), "SF001")
    assert [(f.line, f.leak_class) for f in sf] == [(line_of(src, "if ex * mx"), "")]


def test_sampler_source_classifies_ancillary(tmp_path):
    src = """\
    def draw(u):  # sast: source
        return u * 3
    """
    use = """\
    from pkg.samp import draw

    def consume(u):
        z = draw(u)
        q = z % 7
        return q
    """
    project = load_fixture(tmp_path, {"samp.py": src, "use.py": use})
    sf = by_rule(run_taint(project, _LATTICE_CONFIG), "SF003")
    assert [(f.line, f.leak_class) for f in sf] == [
        (line_of(use, "q = z % 7"), "ancillary")
    ]


# -- constant-time dialect (SF006, strict discharging) ---------------------


def test_constant_time_pragma_strictness(tmp_path):
    """The same flows in a plain module and a ``# sast: constant-time``
    module: the pragma disables interval discharging (SF003 fires on a
    bounded mod) and flags secret-bounded loops (SF006)."""
    plain = textwrap.dedent("""\
    def scan(sk):
        acc = 0
        for i in range(sk.f[0] & 7):
            acc += i
        q = (sk.f[1] & 7) % 4
        return acc + q
    """)
    strict = "# sast: constant-time\n" + plain
    findings = findings_for(tmp_path, {"plain.py": plain, "strict.py": strict})

    plain_f = [f for f in findings if f.path.endswith("plain.py")]
    strict_f = [f for f in findings if f.path.endswith("strict.py")]

    # interval discharge keeps the bounded mod quiet outside the dialect
    assert by_rule(plain_f, "SF003") == []
    assert by_rule(plain_f, "SF006") == []

    assert [f.line for f in by_rule(strict_f, "SF003")] == [
        line_of(strict, "% 4")
    ]
    sf6 = by_rule(strict_f, "SF006")
    assert [f.line for f in sf6] == [line_of(strict, "for i in range")]
    assert "loop" in sf6[0].message.lower()


# -- CT006: leak-class drift in the committed contract ---------------------


def test_planted_wrong_leak_class_fails_verify(tmp_path, capsys):
    """Flipping a dataflow-classed contract entry to a different class
    must fail the static gate with CT006."""
    with open(_CONTRACT, encoding="utf-8") as fh:
        doc = json.load(fh)
    flipped = None
    for entry in doc["entries"]:
        if entry.get("leak_class_source") == "dataflow":
            entry["leak_class"] = (
                "sign" if entry["leak_class"] != "sign" else "exponent"
            )
            flipped = entry
            break
    assert flipped is not None
    contract_path = os.path.join(str(tmp_path), "contract.json")
    with open(contract_path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)

    root = os.path.join(_REPO_ROOT, "src", "repro")
    assert main(["verify", root, "--contract", contract_path]) == EXIT_FINDINGS
    out = capsys.readouterr()
    assert "CT006" in out.out
    assert flipped["line_text"] in out.out


# -- CT007: variant spec parsing and static drift --------------------------


def _spec(**overrides) -> VariantSpec:
    base = dict(
        name="masked-mul",
        module="countermeasures/masked_mul.py",
        entry="repro.countermeasures.masked_mul.masked_fpr_mul",
        workload_module="repro.countermeasures.workload",
        workload_func="run_masked_workload",
        classes_absent=("mantissa-mul",),
        residual=(
            ResidualRecord("SF001", "f.masked_fpr_mul", "if is_zero(x):"),
        ),
    )
    base.update(overrides)
    return VariantSpec(**base)


def _variant_finding(root: str, **overrides) -> Finding:
    base = dict(
        rule="SF001",
        path=os.path.join(root, "countermeasures", "masked_mul.py"),
        line=10,
        col=1,
        message="secret branch",
        function="f.masked_fpr_mul",
        source_line="if is_zero(x):",
        leak_class="",
    )
    base.update(overrides)
    return Finding(**base)


def test_variant_residual_finding_is_accepted(tmp_path):
    root = str(tmp_path)
    spec = _spec()
    violations = check_variants_static(
        [_variant_finding(root)], {spec.name: spec}, root, lambda f: f.leak_class
    )
    assert violations == []


def test_variant_unexpected_finding_is_drift(tmp_path):
    root = str(tmp_path)
    spec = _spec()
    extra = _variant_finding(root, source_line="if fx > 0:", line=42)
    violations = check_variants_static(
        [_variant_finding(root), extra], {spec.name: spec}, root,
        lambda f: f.leak_class,
    )
    assert [f.rule for f in violations] == ["CT007"]
    assert "drift" in violations[0].message
    assert violations[0].line == 42


def test_variant_absent_class_violation(tmp_path):
    """A finding classified into a claimed-absent class breaks the
    variant claim even if its shape matches the residual list."""
    root = str(tmp_path)
    spec = _spec()
    bad = _variant_finding(root, leak_class="mantissa-mul")
    violations = check_variants_static(
        [bad], {spec.name: spec}, root, lambda f: f.leak_class
    )
    assert [f.rule for f in violations] == ["CT007"]
    assert "mantissa-mul" in violations[0].message


def test_variant_stale_residual_is_flagged(tmp_path):
    root = str(tmp_path)
    spec = _spec()
    violations = check_variants_static([], {spec.name: spec}, root, lambda f: "")
    assert [f.rule for f in violations] == ["CT007"]
    assert "stale" in violations[0].message


def test_parse_variants_validation():
    classes = ("sign", "exponent", "mantissa-mul", "mantissa-add", "ancillary")
    good = {
        "m": {
            "module": "countermeasures/masked_mul.py",
            "entry": "repro.countermeasures.masked_mul.masked_fpr_mul",
            "workload": {"module": "w", "func": "run"},
            "classes_absent": ["sign"],
            "residual": [
                {"rule": "SF001", "function": "f", "line_text": "if x:"}
            ],
            "dynamic": {"mode": "confirmed", "residual_lines": ["a  b"]},
        }
    }
    specs = parse_variants(good, "c.json", classes)
    assert specs["m"].dynamic_mode == "confirmed"
    assert specs["m"].dynamic_residual == ("a b",)
    assert specs["m"].residual[0].key() == ("SF001", "f", "if x:")

    def rejects(mutate, match):
        bad = json.loads(json.dumps(good))
        mutate(bad)
        with pytest.raises(ValueError, match=match):
            parse_variants(bad, "c.json", classes)

    rejects(lambda d: d["m"].pop("workload"), "missing 'workload'")
    rejects(
        lambda d: d["m"].__setitem__("classes_absent", ["mantissa"]),
        "unknown leak class",
    )
    rejects(
        lambda d: d["m"]["dynamic"].__setitem__("mode", "quiet"),
        "dynamic mode",
    )
    rejects(
        lambda d: d["m"]["residual"].__setitem__(0, {"rule": "SF001"}),
        "residual records",
    )


def test_normalize_line_collapses_whitespace():
    assert normalize_line("  a   =  b ^ m\n") == "a = b ^ m"
