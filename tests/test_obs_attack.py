"""End-to-end telemetry: the attack engine through the observability layer.

Pins the acceptance properties of the instrumented pipeline: the
journal's event stream is parseable and complete, per-stage spans sum
to (approximately) the wall clock, attaching a journal never changes
the recovered key, and the parallel fan-out accounts exactly the same
metric totals as the serial run.
"""

import sys

import pytest

from repro.attack.key_recovery import CoefficientRecord, ProgressEvent, default_progress_printer
from repro.attack.pipeline import full_attack
from repro.falcon import FalconParams, keygen
from repro.leakage.device import DeviceModel
from repro.obs import RunJournal, read_journal
from repro.obs import metrics as metrics_mod
from repro.obs import spans as spans_mod

# The known-fast successful scale (matches tests/test_attack_session.py):
# FALCON-8, 450 signings, low noise.
N = 8
N_TRACES = 450
SEED = 61


@pytest.fixture(autouse=True)
def fresh_obs_state():
    metrics_mod._reset_state()
    spans_mod._reset_state()
    yield
    metrics_mod._reset_state()
    spans_mod._reset_state()


@pytest.fixture(scope="module")
def victim():
    return keygen(FalconParams.get(N), seed=b"obs-attack-tests")


def run_attack(victim, **kw):
    sk, pk = victim
    return full_attack(
        sk, pk, n_traces=N_TRACES, device=DeviceModel(noise_sigma=2.0),
        seed=SEED, **kw,
    )


class TestAttackTelemetry:
    def test_journaled_run(self, victim, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunJournal(path) as journal:
            report = run_attack(victim, journal=journal)
        assert report.succeeded and report.key_correct

        t = report.telemetry
        assert t is not None
        # per-stage seconds sum to the wall clock within 10% (+ a small
        # absolute allowance for sub-second runs)
        stage_sum = sum(t.per_stage_s.values())
        assert stage_sum == pytest.approx(
            report.elapsed_seconds, rel=0.10, abs=0.25
        )
        assert {"coefficients", "rebuild", "forge"} <= set(t.per_stage_s)
        # rows correlated: every CPA sees <= requested * 2 segments rows
        assert 0 < t.rows_correlated
        assert report.n_traces_correlated <= N_TRACES * 2 * N

        # the journal round-trips: complete, ordered, and typed
        events = read_journal(path)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert kinds.count("progress") >= N  # one per coefficient + algebra
        assert kinds.count("span") >= N + 1  # per-target trees + the root
        assert "metrics" in kinds
        assert [e["seq"] for e in events] == list(range(len(events)))
        run_end = events[-1]
        assert run_end["succeeded"] is True

        # per-target span trees carry the paper's stage vocabulary
        target_spans = [e["span"] for e in events if e["event"] == "span"][:-1]
        for s in target_spans:
            child_names = {c["name"] for c in s.get("children", [])}
            assert {"capture", "mantissa", "exponent", "sign"} <= child_names

    def test_journal_does_not_change_result(self, victim, tmp_path):
        with RunJournal(str(tmp_path / "run.jsonl")) as journal:
            with_journal = run_attack(victim, journal=journal)
        without = run_attack(victim)
        assert with_journal.key_recovery.f == without.key_recovery.f
        assert [c.pattern for c in with_journal.key_recovery.coefficients] == [
            c.pattern for c in without.key_recovery.coefficients
        ]

    def test_parallel_totals_equal_serial(self, victim):
        serial = run_attack(victim, n_workers=1)
        parallel = run_attack(victim, n_workers=2)
        assert serial.key_recovery.f == parallel.key_recovery.f
        cs = serial.telemetry.metrics.counters
        cp = parallel.telemetry.metrics.counters
        assert cs == cp
        assert serial.telemetry.rows_correlated == parallel.telemetry.rows_correlated
        # both runs built one span tree per target under "coefficients"
        for rep in (serial, parallel):
            coeffs = rep.telemetry.root_span.find("coefficients")
            assert len(coeffs.children) == N

    def test_session_checkpoint_counters(self, victim, tmp_path):
        sess = str(tmp_path / "sess")
        first = run_attack(victim, session=sess)
        assert first.telemetry.checkpoints_written == N
        assert first.telemetry.checkpoints_restored == 0
        resumed = run_attack(victim, session=sess)
        assert resumed.telemetry.checkpoints_written == 0
        assert resumed.telemetry.checkpoints_restored == N
        assert resumed.key_recovery.f == first.key_recovery.f

    def test_telemetry_json_round_trips(self, victim):
        import json

        report = run_attack(victim)
        payload = json.loads(json.dumps(report.telemetry.to_jsonable()))
        assert payload["rows_correlated"] == report.telemetry.rows_correlated
        assert payload["span"]["name"] == "attack"
        assert set(payload["per_stage_s"]) == set(report.telemetry.per_stage_s)


class TestProgressPrinter:
    def _event(self):
        return ProgressEvent(
            "coefficient", 1, 8,
            record=CoefficientRecord(
                target_index=4,
                elapsed_seconds=1.5,
                n_traces_requested=450,
                n_traces_kept=(440, 441),
                correct=True,
                exponent_margin=0.25,
            ),
        )

    def test_writes_to_stderr_not_stdout(self, capsys):
        default_progress_printer(self._event())
        out, err = capsys.readouterr()
        assert out == ""  # stdout stays machine-readable
        assert "coefficient    4" in err
        assert "traces=881" in err

    def test_message_only_events(self, capsys):
        default_progress_printer(ProgressEvent("rebuild", 0, 1, message="solving"))
        out, err = capsys.readouterr()
        assert out == ""
        assert "rebuild: solving" in err

    def test_silent_on_empty_event(self, capsys):
        default_progress_printer(ProgressEvent("coefficient", 1, 8))
        out, err = capsys.readouterr()
        assert out == "" and err == ""

    def test_printer_runs_without_tty(self, monkeypatch, capsys):
        monkeypatch.setattr(sys.stderr, "isatty", lambda: False, raising=False)
        default_progress_printer(self._event())
        assert "coefficient" in capsys.readouterr().err
