"""Farm queue durability: leases, expiry, cancellation, torn files."""

import json
import os

import pytest

from repro.attack.config import AttackConfig
from repro.farm.control import format_status, tail_events
from repro.farm.queue import FarmError, FarmQueue
from repro.farm.spec import CampaignSpec, Job, JobState
from repro.leakage.capture import CaptureConfig


class FakeClock:
    """Deterministic time for lease-deadline tests."""

    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def queue(tmp_path, clock):
    return FarmQueue(tmp_path / "farm", clock=clock)


def spec(key_seed="k", **kw):
    return CampaignSpec(key_seed=key_seed, n=8, **kw)


class TestSpecRoundTrip:
    def test_spec_survives_json_exactly(self):
        s = spec(
            capture=CaptureConfig(n_traces=123, seed=7, target="samplerz"),
            attack=AttackConfig(distinguisher="cpa", n_workers=3),
            noise_sigma=1.5,
            use_store=False,
        )
        assert CampaignSpec.from_jsonable(s.to_jsonable()) == s
        # tuples (exponent_guesses) must come back as tuples
        back = CampaignSpec.from_jsonable(json.loads(json.dumps(s.to_jsonable())))
        assert back == s

    def test_digest_is_content_addressed(self):
        assert spec("a").digest() == spec("a").digest()
        assert spec("a").digest() != spec("b").digest()

    def test_job_record_round_trips(self):
        job = Job(job_id="000001-abc", spec=spec(), state=JobState.FAILED,
                  attempts=2, error="boom", done_seq=None)
        assert Job.decode(job.encode()).__dict__ == job.__dict__

    def test_foreign_record_rejected(self):
        with pytest.raises(ValueError):
            Job.decode(json.dumps({"format": "something-else"}))


class TestSubmit:
    def test_ids_sort_in_submission_order(self, queue):
        ids = [queue.submit(spec(f"k{i}")).job_id for i in range(3)]
        assert ids == sorted(ids)
        assert [j.job_id for j in queue.jobs()] == ids

    def test_duplicate_id_refused(self, queue):
        job = queue.submit(spec())
        with pytest.raises(FarmError, match="already exists"):
            queue.submit(spec(), job_id=job.job_id)

    def test_queue_survives_restart(self, tmp_path, clock):
        q1 = FarmQueue(tmp_path / "farm", clock=clock)
        job = q1.submit(spec("persist"))
        q2 = FarmQueue(tmp_path / "farm", clock=clock)
        assert q2.get(job.job_id).spec == job.spec
        assert q2.get(job.job_id).state is JobState.PENDING


class TestLeasing:
    def test_claim_is_fifo_and_exclusive(self, queue):
        a = queue.submit(spec("a"))
        queue.submit(spec("b"))
        leased = queue.claim("w1", lease_ttl=10.0)
        assert leased.job_id == a.job_id
        assert leased.state is JobState.RUNNING
        assert leased.attempts == 1
        # the same job cannot be claimed again while leased
        other = queue.claim("w2", lease_ttl=10.0)
        assert other.job_id != a.job_id

    def test_claim_honors_max_concurrent(self, queue):
        queue.submit(spec("a"))
        queue.submit(spec("b"))
        assert queue.claim("w1", 10.0, max_concurrent=1) is not None
        assert queue.claim("w2", 10.0, max_concurrent=1) is None  # back-pressure
        assert queue.claim("w2", 10.0, max_concurrent=2) is not None

    def test_heartbeat_extends_deadline(self, queue, clock):
        job = queue.submit(spec())
        queue.claim("w1", lease_ttl=10.0)
        clock.advance(8.0)
        queue.heartbeat(job.job_id, "w1", lease_ttl=10.0)
        clock.advance(8.0)  # 16s after claim, but 8s after the beat
        assert queue.requeue_expired() == []
        assert queue.get(job.job_id).state is JobState.RUNNING

    def test_expired_lease_requeues(self, queue, clock):
        job = queue.submit(spec())
        queue.claim("w1", lease_ttl=10.0)
        clock.advance(10.5)
        assert queue.requeue_expired() == [job.job_id]
        again = queue.get(job.job_id)
        assert again.state is JobState.PENDING
        # the successor claims it and the attempt counter reflects history
        successor = queue.claim("w2", lease_ttl=10.0)
        assert successor.job_id == job.job_id
        assert successor.attempts == 2

    def test_heartbeat_after_requeue_refused(self, queue, clock):
        job = queue.submit(spec())
        queue.claim("w1", lease_ttl=10.0)
        clock.advance(11.0)
        queue.requeue_expired()
        queue.claim("w2", lease_ttl=10.0)
        with pytest.raises(FarmError, match="no longer held"):
            queue.heartbeat(job.job_id, "w1", lease_ttl=10.0)

    def test_torn_lease_treated_as_unowned(self, queue, clock):
        job = queue.submit(spec())
        queue.claim("w1", lease_ttl=10.0)
        queue.lease_path(job.job_id).write_bytes(b'{"worker": "w1", "dead')
        assert queue.requeue_expired() == [job.job_id]
        assert queue.get(job.job_id).state is JobState.PENDING

    def test_running_without_lease_is_orphan(self, queue):
        job = queue.submit(spec())
        queue.claim("w1", lease_ttl=10.0)
        os.unlink(queue.lease_path(job.job_id))  # crash between unlink+rewrite
        assert queue.requeue_expired() == [job.job_id]
        assert queue.get(job.job_id).state is JobState.PENDING


class TestLifecycle:
    def test_complete_assigns_done_seq(self, queue):
        a = queue.submit(spec("a"))
        b = queue.submit(spec("b"))
        for job in (a, b):
            queue.claim("w1", 10.0)
            queue.complete(job.job_id, "w1", {"succeeded": True})
        assert queue.get(a.job_id).done_seq == 1
        assert queue.get(b.job_id).done_seq == 2
        assert not queue.lease_path(a.job_id).exists()

    def test_fail_records_error(self, queue):
        job = queue.submit(spec())
        queue.claim("w1", 10.0)
        queue.fail(job.job_id, "w1", "ValueError: boom")
        failed = queue.get(job.job_id)
        assert failed.state is JobState.FAILED
        assert "boom" in failed.error

    def test_cancel_pending_is_immediate(self, queue):
        job = queue.submit(spec())
        queue.cancel(job.job_id)
        assert queue.get(job.job_id).state is JobState.CANCELED
        assert queue.claim("w1", 10.0) is None

    def test_cancel_running_is_cooperative(self, queue):
        job = queue.submit(spec())
        queue.claim("w1", 10.0)
        queue.cancel(job.job_id)
        assert queue.get(job.job_id).state is JobState.RUNNING  # until the worker acks
        assert queue.cancel_requested(job.job_id)
        queue.mark_canceled(job.job_id, "w1")
        assert queue.get(job.job_id).state is JobState.CANCELED

    def test_resume_clears_cancel_and_requeues(self, queue):
        job = queue.submit(spec())
        queue.cancel(job.job_id)
        resumed = queue.resume(job.job_id)
        assert resumed.state is JobState.PENDING
        assert not queue.cancel_requested(job.job_id)
        assert queue.claim("w1", 10.0).job_id == job.job_id

    def test_resume_refuses_wrong_states(self, queue):
        job = queue.submit(spec())
        with pytest.raises(FarmError, match="only canceled/failed"):
            queue.resume(job.job_id)
        queue.claim("w1", 10.0)
        queue.complete(job.job_id, "w1", {"succeeded": True})
        with pytest.raises(FarmError):
            queue.resume(job.job_id)


class TestTornQueueFiles:
    def test_torn_job_file_is_quarantined_not_fatal(self, queue):
        ok = queue.submit(spec("ok"))
        torn = queue.submit(spec("torn"))
        # a torn write (no atomic rename) truncates mid-JSON
        queue.job_path(torn.job_id).write_text('{"format": "falcon-down-farm-job", "spe')
        jobs = queue.jobs()
        assert [j.job_id for j in jobs] == [ok.job_id]
        assert queue.quarantined() == [torn.job_id]
        # status still renders and reports the quarantine
        status = queue.status()
        assert status["quarantined"] == [torn.job_id]
        assert "quarantined" in format_status(status)

    def test_restart_with_torn_file_serves_remaining_jobs(self, tmp_path, clock):
        q1 = FarmQueue(tmp_path / "farm", clock=clock)
        ok = q1.submit(spec("ok"))
        torn = q1.submit(spec("torn"))
        q1.job_path(torn.job_id).write_bytes(b"\x00\x00garbage")
        q2 = FarmQueue(tmp_path / "farm", clock=clock)
        assert q2.claim("w1", 10.0).job_id == ok.job_id
        with pytest.raises(FarmError, match="no readable job"):
            q2.get(torn.job_id)


class TestJournalTail:
    def test_events_stream_with_independent_offsets(self, queue):
        queue.submit(spec("a"))
        path = str(queue.journal_path)
        events_a, off_a = tail_events(path)
        assert [e["event"] for e in events_a] == ["submitted"]
        queue.submit(spec("b"))
        # subscriber A continues from its offset; a fresh subscriber B
        # replays from the start — both see a consistent stream
        more_a, _ = tail_events(path, off_a)
        assert [e["event"] for e in more_a] == ["submitted"]
        events_b, _ = tail_events(path)
        assert len(events_b) == 2

    def test_torn_tail_line_not_consumed(self, queue):
        queue.submit(spec("a"))
        path = str(queue.journal_path)
        _, offset = tail_events(path)
        with open(path, "ab") as fh:  # a writer caught mid-append
            fh.write(b'{"event": "half')
        events, new_offset = tail_events(path, offset)
        assert events == []
        assert new_offset == offset  # will re-read once the line completes
        with open(path, "ab") as fh:
            fh.write(b'written"}\n')
        events, _ = tail_events(path, new_offset)
        assert [e["event"] for e in events] == ["halfwritten"]


class TestStatus:
    def test_status_reflects_queue_lease_quota_state(self, queue, clock):
        a = queue.submit(spec("a"))
        queue.submit(spec("b"))
        queue.claim("w1", lease_ttl=20.0)
        queue.write_limits({"max_concurrent": 2, "max_store_bytes": 1000})
        status = queue.status()
        assert status["counts"] == {
            "pending": 1, "running": 1, "done": 0, "failed": 0, "canceled": 0,
        }
        assert status["leases"][a.job_id]["worker"] == "w1"
        assert status["leases"][a.job_id]["expires_in_s"] == pytest.approx(20.0)
        assert status["limits"]["max_concurrent"] == 2
        assert status["store_bytes"] == 0
        rendered = format_status(status)
        assert "pending=1" in rendered and "running=1" in rendered
