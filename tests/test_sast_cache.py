"""Incremental summary cache: fast path, component invalidation, safety.

The cache must never change *what* the analyzer reports — only whether
work is redone. Every test therefore compares cached findings against a
fresh uncached run of the same tree.
"""

from __future__ import annotations

import json
import os

from tests.sast_util import write_package

from repro.sast.cache import (
    analyzer_digest,
    contract_digest,
    file_digests,
    run_with_cache,
)
from repro.sast.cli import collect_findings, main
from repro.sast.findings import EXIT_FINDINGS
from repro.sast.project import load_project

_LEAKY_A = """\
def leak(sk):
    if sk.f[0] > 0:
        return 1
    return 0
"""

_CLEAN_B = """\
def double(values):
    return [v * 2 for v in values]
"""


def _project(tmp_path, files, name="pkg"):
    root = os.path.join(str(tmp_path), name)
    os.makedirs(root, exist_ok=True)
    write_package(root, files)
    return load_project(root, package=name)


def test_cold_then_hot_fast_path(tmp_path):
    project = _project(tmp_path, {"a.py": _LEAKY_A, "b.py": _CLEAN_B})
    cache = str(tmp_path / "cache.json")

    first, cold = run_with_cache(project, cache)
    assert not cold.fast_path and cold.reanalyzed == ["pkg.a", "pkg.b"]
    assert first == collect_findings(project)

    second, hot = run_with_cache(load_project(project.root, package="pkg"), cache)
    assert hot.fast_path and hot.reused == ["pkg.a", "pkg.b"]
    assert second == first


def test_only_changed_component_is_reanalyzed(tmp_path):
    """a.py and b.py don't import each other: editing b must not
    re-analyze a, and a's findings must survive from the cache."""
    project = _project(tmp_path, {"a.py": _LEAKY_A, "b.py": _CLEAN_B})
    cache = str(tmp_path / "cache.json")
    run_with_cache(project, cache)

    write_package(project.root, {"b.py": _CLEAN_B + "\n\nX = 1\n"})
    reloaded = load_project(project.root, package="pkg")
    findings, stats = run_with_cache(reloaded, cache)
    assert stats.reanalyzed == ["pkg.b"]
    assert stats.reused == ["pkg.a"]
    assert findings == collect_findings(reloaded)
    assert [f.rule for f in findings] == ["SF001"]


def test_import_neighbors_are_invalidated_together(tmp_path):
    """b imports a, so an edit to a dirties both (interprocedural taint
    may cross the edge in either direction)."""
    files = {
        "a.py": _LEAKY_A,
        "b.py": "from pkg.a import leak\n\n\ndef wrap(sk):\n    return leak(sk)\n",
    }
    project = _project(tmp_path, files)
    cache = str(tmp_path / "cache.json")
    run_with_cache(project, cache)

    write_package(project.root, {"a.py": _LEAKY_A + "\n\nY = 2\n"})
    reloaded = load_project(project.root, package="pkg")
    findings, stats = run_with_cache(reloaded, cache)
    assert stats.reanalyzed == ["pkg.a", "pkg.b"]
    assert stats.reused == []
    assert findings == collect_findings(reloaded)


def test_corrupt_cache_falls_back_to_full_run(tmp_path):
    project = _project(tmp_path, {"a.py": _LEAKY_A})
    cache = tmp_path / "cache.json"
    cache.write_text("{not json")
    findings, stats = run_with_cache(project, str(cache))
    assert not stats.fast_path and stats.reanalyzed == ["pkg.a"]
    assert findings == collect_findings(project)
    # and the bad file was replaced with a valid one
    assert json.loads(cache.read_text())["analyzer"] == analyzer_digest()


def test_analyzer_change_invalidates(tmp_path):
    project = _project(tmp_path, {"a.py": _LEAKY_A})
    cache = tmp_path / "cache.json"
    run_with_cache(project, str(cache))
    doc = json.loads(cache.read_text())
    doc["analyzer"] = "0" * 64
    cache.write_text(json.dumps(doc))
    _, stats = run_with_cache(project, str(cache))
    assert not stats.fast_path and stats.reanalyzed == ["pkg.a"]


def test_contract_digest_tracks_file(tmp_path):
    path = tmp_path / "contract.json"
    assert contract_digest(str(path)) == ""          # missing file
    assert contract_digest(None) == ""
    path.write_text("{\"entries\": []}")
    first = contract_digest(str(path))
    assert len(first) == 64
    path.write_text("{\"entries\": [1]}")
    assert contract_digest(str(path)) != first


def test_contract_change_invalidates_cache(tmp_path):
    """The cache is keyed on the contract digest as well as the source:
    regenerating the contract must re-run the analysis even when no
    module changed (the severity annotations depend on it)."""
    project = _project(tmp_path, {"a.py": _LEAKY_A})
    cache = str(tmp_path / "cache.json")
    _, cold = run_with_cache(project, cache, contract_digest="a" * 64)
    assert not cold.fast_path
    _, hot = run_with_cache(project, cache, contract_digest="a" * 64)
    assert hot.fast_path
    _, stale = run_with_cache(project, cache, contract_digest="b" * 64)
    assert not stale.fast_path and stale.reanalyzed == ["pkg.a"]
    _, rewarmed = run_with_cache(project, cache, contract_digest="b" * 64)
    assert rewarmed.fast_path


def test_file_digests_track_content(tmp_path):
    project = _project(tmp_path, {"a.py": _LEAKY_A})
    before = file_digests(project)
    write_package(project.root, {"a.py": _LEAKY_A + "# touched\n"})
    after = file_digests(load_project(project.root, package="pkg"))
    assert before.keys() == after.keys() == {"pkg.a"}
    assert before["pkg.a"] != after["pkg.a"]


def test_cli_cache_flag_round_trip(tmp_path, capsys):
    root = os.path.join(str(tmp_path), "pkg")
    os.makedirs(root)
    write_package(root, {"a.py": _LEAKY_A})
    cache = str(tmp_path / "cli-cache.json")
    assert main([root, "--cache", cache]) == EXIT_FINDINGS
    assert "cache cold" in capsys.readouterr().err
    assert main([root, "--cache", cache]) == EXIT_FINDINGS
    out = capsys.readouterr()
    assert "cache hot" in out.err
    assert "SF001" in out.out
