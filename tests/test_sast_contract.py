"""Leakage contract: schema validation, construction, and the verify gate.

Two layers again: fast unit tests over synthetic contracts, and two
*planted-defect* acceptance tests that copy the real ``src/repro`` tree,
introduce a regression (a new secret branch / a dead declassify scope),
and check that ``repro-sast verify --oracle`` turns red.
"""

from __future__ import annotations

import json
import os
import shutil

import pytest

from tests.sast_util import write_package

from repro.sast.cli import main
from repro.sast.contract import (
    Contract,
    ContractEntry,
    build_contract,
    infer_leak_class,
    load_contract,
    render_contract,
    verify_contract,
)
from repro.sast.findings import EXIT_CLEAN, EXIT_FINDINGS, Finding

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_CONTRACT = os.path.join(_REPO_ROOT, "leakage-contract.json")


def _entry(**kw) -> ContractEntry:
    base = dict(
        rule="SF001", path="falcon/sign.py", function="repro.falcon.sign.sign",
        line_text="if c0 > 0:", occurrence=0, leak_class="ancillary",
        reason="test entry", verdict="CONFIRMED",
    )
    base.update(kw)
    return ContractEntry(**base)


def _finding(entry: ContractEntry, root: str, line: int = 10) -> Finding:
    return Finding(
        rule=entry.rule, path=os.path.join(root, entry.path), line=line, col=4,
        message="m", function=entry.function, source_line=entry.line_text,
    )


# -- schema ----------------------------------------------------------------


def test_contract_round_trip(tmp_path):
    contract = Contract(
        entries=[_entry(), _entry(rule="DT002", verdict="N/A", occurrence=2)],
        refuted=[_entry(path="falcon/keygen.py", verdict="REFUTED")],
        oracle_meta={"backend": "settrace", "n": 8},
    )
    path = str(tmp_path / "contract.json")
    with open(path, "w") as fh:
        fh.write(render_contract(contract))
    loaded = load_contract(path)
    assert loaded.entry_map() == contract.entry_map()
    assert loaded.refuted_map() == contract.refuted_map()
    assert loaded.coverage_prefixes == contract.coverage_prefixes
    assert loaded.oracle_meta == contract.oracle_meta


@pytest.mark.parametrize(
    "mutate, fragment",
    [
        (lambda d: d["entries"][0].update(leak_class="bogus"), "leak_class"),
        (lambda d: d["entries"][0].update(reason="  "), "no reason"),
        (lambda d: d["entries"][0].update(verdict="MAYBE"), "verdict"),
        (lambda d: d.update(version=99), "unsupported"),
        (lambda d: d.update(coverage_prefixes=[1]), "coverage_prefixes"),
        (lambda d: d["refuted"][0].update(verdict="CONFIRMED"), "verdict"),
    ],
)
def test_contract_validation_errors(tmp_path, mutate, fragment):
    doc = json.loads(render_contract(Contract(
        entries=[_entry()], refuted=[_entry(verdict="REFUTED")],
    )))
    mutate(doc)
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(doc))
    with pytest.raises(ValueError, match=fragment):
        load_contract(str(path))


def test_infer_leak_class_taxonomy():
    assert infer_leak_class("SF001", "fpr/emu.py", "repro.fpr.emu.fpr_mul", "if sx:") == "sign"
    assert infer_leak_class("SF003", "fpr/emu.py", "repro.fpr.emu.decompose", "m = x & MASK") == "exponent"
    assert infer_leak_class("SF003", "fpr/emu.py", "repro.fpr.emu.fpr_mul", "z = a * b") == "mantissa-mul"
    assert infer_leak_class("SF001", "fpr/emu.py", "repro.fpr.emu.fpr_add", "if m:") == "mantissa-add"
    assert infer_leak_class("SF001", "falcon/sign.py", "repro.falcon.sign.sign_target", "t1 = c_fft * f_fft") == "mantissa-mul"
    assert infer_leak_class("SF001", "falcon/compress.py", "repro.falcon.compress.compress", "if coeff < 0:") == "sign"
    assert infer_leak_class("SF003", "math/ntt.py", "repro.math.ntt.ntt", "x % q") == "ancillary"


# -- construction ----------------------------------------------------------


def test_build_contract_carries_reviewed_fields_forward(tmp_path):
    root = str(tmp_path / "pkg")
    entry = _entry(leak_class="sign", reason="hand-reviewed: models the sign leak")
    previous = Contract(entries=[entry])
    contract = build_contract([_finding(entry, root)], root, previous=previous)
    assert len(contract.entries) == 1
    rebuilt = contract.entries[0]
    assert rebuilt.leak_class == "sign"
    assert rebuilt.reason == "hand-reviewed: models the sign leak"
    assert rebuilt.verdict == "CONFIRMED"      # static refresh keeps the claim


def test_build_contract_infers_for_new_findings(tmp_path):
    root = str(tmp_path / "pkg")
    entry = _entry(path="fpr/emu.py", function="repro.fpr.emu.fpr_add", line_text="if m:")
    contract = build_contract([_finding(entry, root)], root)
    assert contract.entries[0].leak_class == "mantissa-add"
    assert "double-precision" in contract.entries[0].reason


# -- enforcement (synthetic) -----------------------------------------------


def test_verify_flags_untriaged_and_stale_and_failing_verdicts(tmp_path):
    root = str(tmp_path / "pkg")
    covered = _entry()
    unreached = _entry(
        path="fpr/emu.py", line_text="if s:", leak_class="sign", verdict="UNREACHED"
    )
    stale = _entry(path="math/ntt.py", line_text="gone")
    new = _entry(path="falcon/keygen.py", line_text="if sk.g[0]:")
    contract = Contract(entries=[covered, unreached, stale])
    findings = [_finding(covered, root), _finding(unreached, root), _finding(new, root)]
    violations = verify_contract(findings, contract, root)
    assert sorted(v.rule for v in violations) == ["CT001", "CT002", "CT003"]
    by_rule = {v.rule: v for v in violations}
    assert "falcon/keygen.py" in by_rule["CT001"].path
    assert "math/ntt.py" in by_rule["CT002"].message
    assert "UNREACHED" in by_rule["CT003"].message


def test_verify_clean_when_contract_matches(tmp_path):
    root = str(tmp_path / "pkg")
    entry = _entry()
    contract = Contract(entries=[entry])
    assert verify_contract([_finding(entry, root)], contract, root) == []


# -- planted-defect acceptance tests (real tree + dynamic oracle) ----------


def _copy_repro(tmp_path) -> str:
    src = os.path.join(_REPO_ROOT, "src", "repro")
    dst = os.path.join(str(tmp_path), "repro")
    shutil.copytree(src, dst, ignore=shutil.ignore_patterns("__pycache__"))
    return dst


def test_committed_contract_matches_current_findings():
    """Static gate on the real tree: recorded verdicts, no violations."""
    root = os.path.join(_REPO_ROOT, "src", "repro")
    assert main(["verify", root, "--contract", _CONTRACT]) == EXIT_CLEAN


def test_planted_secret_branch_is_confirmed_and_fails_verify(tmp_path, capsys):
    """A new secret-dependent branch in falcon.sign must (a) be reached by
    the oracle workload with key-dependent operands (CONFIRMED) and
    (b) fail the gate as untriaged (CT001)."""
    root = _copy_repro(tmp_path)
    sign_py = os.path.join(root, "falcon", "sign.py")
    with open(sign_py, encoding="utf-8") as fh:
        src = fh.read()
    planted = (
        "    params = sk.params\n"
        "    c0 = sk.f[0]\n"
        "    if c0 > 0:\n"
        "        pass\n"
    )
    assert "    params = sk.params\n" in src
    with open(sign_py, "w", encoding="utf-8") as fh:
        fh.write(src.replace("    params = sk.params\n", planted, 1))

    assert main(["verify", root, "--contract", _CONTRACT, "--oracle"]) == EXIT_FINDINGS
    out = capsys.readouterr()
    assert "CT001" in out.out
    assert "oracle verdict: CONFIRMED" in out.out
    assert "violation" in out.err


def test_planted_dead_declassify_fails_verify(tmp_path, capsys):
    """A declassify scope inside the coverage boundary that the workload
    never executes must fail the oracle-backed gate (CT005)."""
    root = _copy_repro(tmp_path)
    write_package(root, {os.path.join("falcon", "_planted.py"): """\
        def helper(flags):  # sast: declassify(reason=planted: never executed)
            return sum(flags)
        """})

    assert main(["verify", root, "--contract", _CONTRACT, "--oracle"]) == EXIT_FINDINGS
    out = capsys.readouterr()
    assert "CT005" in out.out
    assert "_planted" in out.out
    assert "never executed" in out.out.lower() or "never" in out.out


def test_recorded_refuted_verdict_fails_verify_without_oracle(tmp_path):
    """Static-only mode enforces recorded verdicts: an entry recorded as
    REFUTED (left in 'entries' instead of the 'refuted' section) is a
    CT003 violation even when the oracle does not run."""
    root = str(tmp_path / "pkg")
    entry = _entry(verdict="REFUTED")
    contract = Contract(entries=[entry])
    violations = verify_contract([_finding(entry, root)], contract, root)
    assert [v.rule for v in violations] == ["CT003"]
    assert "REFUTED" in violations[0].message
