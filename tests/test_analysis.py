"""Tests for confidence bounds, evolution analysis and figure rendering."""

import numpy as np
import pytest

from repro.analysis import (
    Series,
    ascii_plot,
    confidence_bound,
    correlation_evolution,
    format_ranking,
    format_table,
    traces_needed_for,
    traces_to_significance,
    write_csv,
)
from repro.utils.bits import hamming_weight_array


class TestConfidence:
    def test_bound_matches_stats_module(self):
        from repro.utils.stats import fisher_z_threshold

        assert confidence_bound(5000) == fisher_z_threshold(5000)

    def test_traces_needed_inverse_of_bound(self):
        """traces_needed_for(r) traces make r exactly significant."""
        for r in (0.05, 0.1, 0.3):
            d = traces_needed_for(r)
            assert confidence_bound(d) <= r
            assert confidence_bound(max(d - 50, 4)) > r * 0.9

    def test_paper_scale_prediction(self):
        """A sign-bit correlation of ~0.04 needs ~9-10k traces (paper)."""
        d = traces_needed_for(0.041)
        assert 7000 < d < 11000

    def test_domain(self):
        with pytest.raises(ValueError):
            traces_needed_for(0.0)
        with pytest.raises(ValueError):
            traces_needed_for(1.0)

    def test_returned_count_satisfies_strict_test(self):
        """Regression: the engine's significance test is strict (|r| >
        bound), so the returned D must clear it strictly — the old
        ceil-based closed form could land exactly on the boundary
        atanh(|r|) == z/sqrt(D-3), which the strict test rejects."""
        for r in (0.02, 0.041, 0.05, 0.1, 0.3, 0.5, 0.9):
            d = traces_needed_for(r)
            assert r > confidence_bound(d), (r, d)

    def test_returned_count_is_minimal(self):
        """D is the *smallest* trace count that is strictly significant."""
        for r in (0.02, 0.05, 0.1, 0.3, 0.5):
            d = traces_needed_for(r)
            assert d >= 4
            if d > 4:
                assert not r > confidence_bound(d - 1), (r, d)

    def test_exact_boundary_is_stepped_past(self):
        """Pick r so that (z/atanh r)^2 + 3 is as close to integral as
        float64 allows; the result must still clear the strict test."""
        import math

        from repro.utils.stats import normal_quantile

        z = normal_quantile(0.9999)
        for d_target in (100, 1000, 9973):
            # r chosen to put the closed form exactly at d_target
            r = math.tanh(z / math.sqrt(d_target - 3))
            d = traces_needed_for(r)
            assert r > confidence_bound(d)
            assert d >= d_target


class TestEvolution:
    def _planted(self, d=4000, noise=4.0):
        rng = np.random.default_rng(11)
        known = rng.integers(1, 1 << 20, d).astype(np.uint64)
        secret = 7
        guesses = np.arange(1, 17, dtype=np.uint64)
        hyp = hamming_weight_array(known[:, None] * guesses[None, :]).astype(np.int8)
        leak = hamming_weight_array(known * np.uint64(secret)).astype(float)
        samples = leak + rng.normal(0, noise, d)
        return hyp, samples, guesses, secret

    def test_correct_guess_crosses_and_stays(self):
        hyp, samples, guesses, secret = self._planted()
        evo = correlation_evolution(hyp, samples, guesses)
        crossing = traces_to_significance(evo, secret)
        assert crossing is not None
        assert crossing < 4000

    def test_thresholds_shrink(self):
        hyp, samples, guesses, _ = self._planted()
        evo = correlation_evolution(hyp, samples, guesses)
        assert all(a >= b for a, b in zip(evo.thresholds, evo.thresholds[1:]))

    def test_unknown_guess_rejected(self):
        hyp, samples, guesses, _ = self._planted(d=500)
        evo = correlation_evolution(hyp, samples, guesses)
        with pytest.raises(ValueError):
            traces_to_significance(evo, 999)

    def test_custom_checkpoints(self):
        hyp, samples, guesses, _ = self._planted(d=1000)
        evo = correlation_evolution(hyp, samples, guesses, checkpoints=[100, 500, 1000])
        assert list(evo.checkpoints) == [100, 500, 1000]
        assert evo.corr.shape == (3, 16)

    def test_never_significant_returns_none(self):
        rng = np.random.default_rng(0)
        hyp = rng.integers(0, 8, (500, 4)).astype(np.int8)
        samples = rng.standard_normal(500)
        evo = correlation_evolution(hyp, samples, np.arange(4), confidence=0.999999)
        # with pure noise, at least one of the 4 guesses is typically
        # not significant; check the API contract on one such guess
        crossings = [evo.crossing_point(i) for i in range(4)]
        assert None in crossings


class TestReport:
    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "---" in lines[1]

    def test_format_ranking_marks_correct(self):
        out = format_ranking([10, 20, 30], [0.1, 0.9, 0.5], correct=20, top=3)
        lines = out.splitlines()
        assert "<-- correct" in lines[0]
        assert "0x14" in lines[0]


class TestFigures:
    def test_series_validation(self):
        with pytest.raises(ValueError):
            Series("bad", [1, 2], [1])

    def test_write_csv(self, tmp_path):
        path = str(tmp_path / "fig.csv")
        write_csv(path, [Series("a", [1, 2], [3.0, 4.0])])
        content = open(path).read().splitlines()
        assert content[0] == "series,x,y"
        assert content[1] == "a,1,3.0"

    def test_ascii_plot_renders(self):
        out = ascii_plot(
            [Series("corr", [1, 10, 100], [0.1, 0.5, 0.9])],
            title="demo",
            x_label="traces",
            y_label="corr",
        )
        assert "demo" in out
        assert "corr" in out
        assert "*" in out

    def test_ascii_plot_empty(self):
        assert "empty" in ascii_plot([Series("e", [], [])])

    def test_ascii_plot_constant_series(self):
        out = ascii_plot([Series("c", [1, 2], [5.0, 5.0])])
        assert "c" in out
