"""Negative control: the full attack must FAIL against a masked device.

If the pipeline "recovered" a key from a first-order-masked device, the
leakage simulation or the attack would be broken (e.g. exploiting
simulator artifacts instead of the modeled physics). This test pins the
masked outcome down as a clean failure report, not a crash.
"""

import pytest

from repro.attack import full_attack
from repro.countermeasures import MaskingTransform
from repro.falcon import FalconParams, keygen


@pytest.mark.slow
def test_full_attack_fails_against_masked_device():
    sk, pk = keygen(FalconParams.get(8), seed=b"masked-victim")
    report = full_attack(
        sk,
        pk,
        n_traces=3000,
        value_transform=MaskingTransform(),
    )
    assert not report.key_correct
    assert not report.forgery_verifies
    assert "no" in report.summary()
