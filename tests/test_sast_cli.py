"""``repro-sast`` CLI: exit-code contract, JSON output, repo gate."""

from __future__ import annotations

import json
import os

from tests.sast_util import line_of, write_package

from repro.sast.cli import collect_findings, main
from repro.sast.findings import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS, RULES
from repro.sast.project import load_project

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_LEAKY = """\
def leak(sk):
    if sk.f[0] > 0:
        return 1
    return 0
"""

_CLEAN = """\
def fine(values):
    return sum(values)
"""


def _pkg(tmp_path, files, name="pkg"):
    root = os.path.join(str(tmp_path), name)
    os.makedirs(root, exist_ok=True)
    write_package(root, files)
    return root


def test_exit_zero_on_clean_tree(tmp_path, capsys):
    root = _pkg(tmp_path, {"ok.py": _CLEAN})
    assert main([root]) == EXIT_CLEAN
    assert capsys.readouterr().out == ""


def test_exit_one_on_findings(tmp_path, capsys):
    root = _pkg(tmp_path, {"leak.py": _LEAKY})
    assert main([root]) == EXIT_FINDINGS
    out = capsys.readouterr()
    assert "SF001" in out.out
    assert "finding" in out.err


def test_exit_two_on_bad_root(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == EXIT_ERROR
    assert "error" in capsys.readouterr().err


def test_exit_two_on_unknown_rule_filter(tmp_path, capsys):
    root = _pkg(tmp_path, {"ok.py": _CLEAN})
    assert main([root, "--rules", "SF001,NOPE9"]) == EXIT_ERROR
    assert "NOPE9" in capsys.readouterr().err


def test_exit_two_on_malformed_baseline(tmp_path, capsys):
    root = _pkg(tmp_path, {"ok.py": _CLEAN})
    bad = tmp_path / "bad.json"
    bad.write_text("{")
    assert main([root, "--baseline", str(bad)]) == EXIT_ERROR


def test_rule_filter_restricts_report(tmp_path, capsys):
    root = _pkg(tmp_path, {"leak.py": _LEAKY})
    assert main([root, "--rules", "DT001"]) == EXIT_CLEAN


def test_json_format_golden(tmp_path, capsys):
    root = _pkg(tmp_path, {"leak.py": _LEAKY})
    assert main([root, "--format", "json"]) == EXIT_FINDINGS
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {"findings", "count"}
    assert payload["count"] == len(payload["findings"]) == 1
    f = payload["findings"][0]
    assert f["rule"] == "SF001"
    assert f["path"].endswith("leak.py")
    assert f["line"] == line_of(_LEAKY, "if sk.f[0]")
    assert f["function"] == "pkg.leak.leak"
    assert "SecretKey.f" in f["taint_chain"][0]


def test_json_format_clean_tree(tmp_path, capsys):
    root = _pkg(tmp_path, {"ok.py": _CLEAN})
    assert main([root, "--format", "json"]) == EXIT_CLEAN
    payload = json.loads(capsys.readouterr().out)
    assert payload == {"findings": [], "count": 0}


def test_write_then_check_baseline_cycle(tmp_path, capsys):
    root = _pkg(tmp_path, {"leak.py": _LEAKY})
    baseline = str(tmp_path / "bl.json")
    assert main([root, "--write-baseline", "--baseline", baseline]) == EXIT_CLEAN
    # baselined findings no longer fail the gate
    assert main([root, "--baseline", baseline, "--check-baseline"]) == EXIT_CLEAN
    # fixing the code makes the entry stale: plain run passes ...
    write_package(root, {"leak.py": _CLEAN})
    assert main([root, "--baseline", baseline]) == EXIT_CLEAN
    # ... but --check-baseline fails with BL001 until the entry is removed
    capsys.readouterr()
    assert main([root, "--baseline", baseline, "--check-baseline"]) == EXIT_FINDINGS
    assert "BL001" in capsys.readouterr().out


def test_list_rules(capsys):
    assert main(["--list-rules"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule in out


def test_repo_gate_is_green():
    """src/repro + the committed leakage contract must be clean (what
    `make sast` and the CI job enforce, recorded verdicts)."""
    root = os.path.join(_REPO_ROOT, "src", "repro")
    contract = os.path.join(_REPO_ROOT, "leakage-contract.json")
    assert main(["verify", root, "--contract", contract]) == EXIT_CLEAN


def test_repo_contract_documents_only_the_attack_surface():
    """Accepted findings live exclusively in the faithfully-leaky layers
    (falcon/, fpr/, math/) plus the masked variant's recorded clear
    boundary — everything else must stay finding-free."""
    root = os.path.join(_REPO_ROOT, "src", "repro")
    findings = collect_findings(load_project(root, package="repro"))
    prefixes = {os.path.relpath(f.path, root).split(os.sep)[0] for f in findings}
    assert prefixes <= {"falcon", "fpr", "math", "countermeasures"}
    # the only countermeasures finding is the masked multiplier's zero
    # test on the unblinded inputs (the contract's residual record)
    residual = [
        f for f in findings
        if os.path.relpath(f.path, root).split(os.sep)[0] == "countermeasures"
    ]
    assert [(f.rule, os.path.basename(f.path)) for f in residual] == [
        ("SF001", "masked_mul.py")
    ]


def test_repo_contract_entries_are_fully_triaged():
    """Every committed contract entry carries a paper leak class, a
    reviewed reason, and a passing oracle verdict; the refuted section
    records proven-independent chains only."""
    from repro.sast.contract import LEAK_CLASSES, load_contract

    contract = load_contract(os.path.join(_REPO_ROOT, "leakage-contract.json"))
    assert contract.entries, "committed contract must not be empty"
    for entry in contract.entries:
        assert entry.leak_class in LEAK_CLASSES
        assert entry.reason.strip()
        assert entry.verdict in ("CONFIRMED", "N/A")
        assert entry.verdict == ("CONFIRMED" if entry.rule.startswith("SF") else "N/A")
    for entry in contract.refuted:
        assert entry.verdict == "REFUTED"
    # the keygen NTRU sanity check is the known honest refutation
    assert any(e.path == "falcon/keygen.py" for e in contract.refuted)


# -- rank mode ---------------------------------------------------------------

_BOUNDED_LEAK = """\
def butterfly(sk):
    u = sk.f[0] % 12289
    if u > 0:
        return 1
    return 0
"""


def _ranked_fixture(tmp_path):
    from repro.sast.contract import build_contract, render_contract

    root = _pkg(tmp_path, {"leak.py": _BOUNDED_LEAK})
    project = load_project(root, package="pkg")
    contract = build_contract(
        collect_findings(project), project.root, project=project
    )
    path = os.path.join(str(tmp_path), "contract.json")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_contract(contract))
    return root, path


def test_rank_json_is_deterministic_and_total(tmp_path, capsys):
    root, contract = _ranked_fixture(tmp_path)
    assert main(["rank", root, "--contract", contract,
                 "--format", "json"]) == EXIT_CLEAN
    first = capsys.readouterr().out
    assert main(["rank", root, "--contract", contract,
                 "--format", "json"]) == EXIT_CLEAN
    assert capsys.readouterr().out == first
    payload = json.loads(first)
    ranked = payload["ranked"]
    assert [e["rank"] for e in ranked] == [1, 2]
    scores = [e["exploitability"]["score"] for e in ranked]
    assert scores == sorted(scores, reverse=True)
    # rank 1 is the statically-bounded branch operand
    assert ranked[0]["line_text"] == "if u > 0:"
    assert ranked[0]["exploitability"]["hypothesis_computable"] is True
    assert len(ranked[0]["exploitability"]["entry_id"]) == 12


def test_rank_text_top_limits_and_summarizes(tmp_path, capsys):
    root, contract = _ranked_fixture(tmp_path)
    assert main(["rank", root, "--contract", contract, "--top", "1"]) == EXIT_CLEAN
    out = capsys.readouterr()
    assert "'if u > 0:'" in out.out
    assert "'u = sk.f[0] % 12289'" not in out.out
    assert "ranked 2 CONFIRMED entries (showing 1)" in out.err


def test_rank_explain_reports_heuristic_classes(tmp_path, capsys):
    root, contract = _ranked_fixture(tmp_path)
    assert main(["rank", root, "--contract", contract, "--explain"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    assert "heuristic-sourced leak classes" in out
    assert "recorded=ancillary keyword=ancillary" in out


def test_rank_missing_contract_errors(tmp_path, capsys):
    root = _pkg(tmp_path, {"leak.py": _BOUNDED_LEAK})
    missing = os.path.join(str(tmp_path), "nope.json")
    assert main(["rank", root, "--contract", missing]) == EXIT_ERROR
    assert "contract not found" in capsys.readouterr().err


def test_rank_repo_contract_round_trip(capsys):
    """`repro-sast rank` over the committed tree: every CONFIRMED entry
    ranked, scores re-derived (not read back verbatim), output stable."""
    root = os.path.join(_REPO_ROOT, "src", "repro")
    contract = os.path.join(_REPO_ROOT, "leakage-contract.json")
    assert main(["rank", root, "--contract", contract, "--format", "json",
                 "--package", "repro"]) == EXIT_CLEAN
    payload = json.loads(capsys.readouterr().out)
    from repro.sast.contract import load_contract

    shipped = load_contract(contract)
    confirmed = [e for e in shipped.entries if e.verdict == "CONFIRMED"]
    assert len(payload["ranked"]) == len(confirmed)
    # the re-derived scores agree with the committed blocks
    by_id = {e.exploitability.entry_id: e.exploitability.score
             for e in shipped.entries if e.exploitability is not None}
    for row in payload["ranked"]:
        x = row["exploitability"]
        assert by_id[x["entry_id"]] == x["score"]
