"""Baseline fingerprinting: round-trip, line-drift tolerance, staleness."""

from __future__ import annotations

import json

import pytest

from tests.sast_util import by_rule, findings_for, load_fixture

from repro.sast.baseline import (
    apply_baseline,
    assign_occurrences,
    fingerprint,
    load_baseline,
    render_baseline,
)
from repro.sast.cli import collect_findings

_LEAKY = """\
def leak(sk):
    if sk.f[0] > 0:
        return 1
    return 0
"""


def _findings_and_root(tmp_path, files, package="pkg"):
    project = load_fixture(tmp_path, files, package)
    return collect_findings(project), project.root


def test_round_trip_suppresses_everything(tmp_path):
    findings, root = _findings_and_root(tmp_path, {"leak.py": _LEAKY})
    assert findings
    baseline_path = str(tmp_path / "baseline.json")
    with open(baseline_path, "w") as fh:
        fh.write(render_baseline(findings, root))
    baseline = load_baseline(baseline_path)
    fresh, stale = apply_baseline(findings, baseline, root, baseline_path)
    assert fresh == [] and stale == []


def test_fingerprint_survives_line_drift(tmp_path):
    findings, root = _findings_and_root(tmp_path / "a", {"leak.py": _LEAKY})
    baseline = {fingerprint(f, root) for f in assign_occurrences(findings)}
    # prepend a docstring + helper: every line number shifts, the
    # fingerprint (function, normalized line text) does not
    shifted = '"""Docstring pushing everything down."""\n\nX = 1\n\n' + _LEAKY
    moved, moved_root = _findings_and_root(tmp_path / "b", {"leak.py": shifted})
    assert [f.line for f in moved] != [f.line for f in findings]
    fresh, stale = apply_baseline(moved, baseline, moved_root)
    assert fresh == [] and stale == []


def test_editing_the_flagged_line_invalidates_the_entry(tmp_path):
    findings, root = _findings_and_root(tmp_path / "a", {"leak.py": _LEAKY})
    baseline = {fingerprint(f, root) for f in assign_occurrences(findings)}
    edited = _LEAKY.replace("sk.f[0] > 0", "sk.f[1] > 0")
    new, new_root = _findings_and_root(tmp_path / "b", {"leak.py": edited})
    fresh, stale = apply_baseline(new, baseline, new_root)
    assert len(fresh) == len(new)          # the edited finding is new again
    assert len(stale) == len(baseline)     # and the old entry is stale
    assert all(f.rule == "BL001" for f in stale)


def test_removed_finding_becomes_stale_entry(tmp_path):
    findings, root = _findings_and_root(tmp_path / "a", {"leak.py": _LEAKY})
    baseline = {fingerprint(f, root) for f in assign_occurrences(findings)}
    clean = "def leak(sk):\n    return 0\n"
    now, now_root = _findings_and_root(tmp_path / "b", {"leak.py": clean})
    fresh, stale = apply_baseline(now, baseline, now_root, "bl.json")
    assert fresh == []
    assert [f.rule for f in stale] == ["BL001"] * len(baseline)
    assert all(f.path == "bl.json" for f in stale)


def test_occurrences_disambiguate_identical_lines(tmp_path):
    src = """\
    def twice(sk):
        a = sk.f[0] % 3
        a = sk.f[0] % 3
        return a
    """
    findings = by_rule(findings_for(tmp_path, {"dup.py": src}), "SF003")
    assert len(findings) == 2
    fps = {fingerprint(f, str(tmp_path)) for f in assign_occurrences(findings)}
    assert len(fps) == 2                   # occurrence index separates them
    assert {fp[4] for fp in fps} == {0, 1}


def test_malformed_baseline_raises(tmp_path):
    p = tmp_path / "bad.json"
    p.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(ValueError):
        load_baseline(str(p))
    p.write_text(json.dumps({"version": 1, "entries": "nope"}))
    with pytest.raises(ValueError):
        load_baseline(str(p))
