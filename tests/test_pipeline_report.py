"""Tests for the attack pipeline report and the top-level package API."""

import pytest

import repro
from repro.attack.pipeline import FullAttackReport
from repro.attack.key_recovery import KeyRecoveryResult


class TestPackageApi:
    def test_version(self):
        assert repro.__version__

    def test_defaults_exposed(self):
        assert repro.PAPER_N == 512
        assert repro.PAPER_N_TRACES == 10_000
        assert repro.DEFAULT_N in (8, 16)

    def test_public_names_importable(self):
        from repro.attack import (  # noqa: F401
            AttackConfig,
            CpaResult,
            full_attack,
            recover_coefficient,
            recover_mantissa,
            run_cpa,
        )
        from repro.falcon import FalconParams, keygen, sign, verify  # noqa: F401
        from repro.leakage import CaptureCampaign, DeviceModel, TraceSet  # noqa: F401


class TestReportFormatting:
    def _fake_report(self, key_correct=True, forgery=True):
        kr = KeyRecoveryResult(
            f=[1], g=[2], big_f=[3], big_g=[4], recovered_sk=None, coefficients=[]
        )
        return FullAttackReport(
            n=8,
            n_traces=10_000,
            key_recovery=kr,
            key_correct=key_correct,
            forgery_verifies=forgery,
            forged_message=b"msg",
            elapsed_seconds=12.5,
        )

    def test_summary_success(self):
        s = self._fake_report().summary()
        assert "FALCON-8" in s
        assert "10000 measurements" in s
        assert "f recovered: YES" in s
        assert "verifies: YES" in s

    def test_summary_failure(self):
        s = self._fake_report(key_correct=False, forgery=False).summary()
        assert "f recovered: no" in s
        assert "verifies: no" in s

    def test_counts(self):
        r = self._fake_report()
        assert r.n_coefficients == 0
        assert r.n_correct_coefficients == 0

    def test_failed_recovery_renders_reason(self):
        """A failed run produces a typed report: recovered_sk stays None
        (the field is Optional now, not a lie) and the summary says why
        instead of relying on empty-list sentinels."""
        kr = KeyRecoveryResult(
            f=[], g=[], big_f=[], big_g=[], recovered_sk=None, coefficients=[]
        )
        assert not kr.succeeded
        report = FullAttackReport(
            n=8,
            n_traces=150,
            key_recovery=kr,
            key_correct=False,
            forgery_verifies=False,
            forged_message=b"msg",
            elapsed_seconds=3.0,
            failure="recovered f has huge coefficients",
        )
        assert not report.succeeded
        s = report.summary()
        assert "key recovery FAILED: recovered f has huge coefficients" in s
        assert "coefficients recovered exactly" not in s  # nothing to count

    def test_correlated_rows_and_parallel_lines(self):
        from repro.attack.key_recovery import CoefficientRecord

        kr = KeyRecoveryResult(
            f=[1], g=[2], big_f=[3], big_g=[4], recovered_sk=None, coefficients=[],
            records=[
                CoefficientRecord(
                    target_index=j,
                    elapsed_seconds=2.0,
                    n_traces_requested=100,
                    n_traces_kept=(98, 97),
                    correct=True,
                )
                for j in range(4)
            ],
        )
        assert kr.n_traces_correlated == 4 * (98 + 97)
        report = FullAttackReport(
            n=8,
            n_traces=100,
            key_recovery=kr,
            key_correct=True,
            forgery_verifies=True,
            forged_message=b"msg",
            elapsed_seconds=4.0,
            n_traces_correlated=kr.n_traces_correlated,
            n_workers=2,
        )
        assert report.coefficient_seconds == pytest.approx(8.0)
        s = report.summary()
        assert "trace rows correlated: 780" in s
        assert "with 2 workers" in s
