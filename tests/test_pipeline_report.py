"""Tests for the attack pipeline report and the top-level package API."""

import pytest

import repro
from repro.attack.pipeline import FullAttackReport
from repro.attack.key_recovery import KeyRecoveryResult


class TestPackageApi:
    def test_version(self):
        assert repro.__version__

    def test_defaults_exposed(self):
        assert repro.PAPER_N == 512
        assert repro.PAPER_N_TRACES == 10_000
        assert repro.DEFAULT_N in (8, 16)

    def test_public_names_importable(self):
        from repro.attack import (  # noqa: F401
            AttackConfig,
            CpaResult,
            full_attack,
            recover_coefficient,
            recover_mantissa,
            run_cpa,
        )
        from repro.falcon import FalconParams, keygen, sign, verify  # noqa: F401
        from repro.leakage import CaptureCampaign, DeviceModel, TraceSet  # noqa: F401


class TestReportFormatting:
    def _fake_report(self, key_correct=True, forgery=True):
        kr = KeyRecoveryResult(
            f=[1], g=[2], big_f=[3], big_g=[4], recovered_sk=None, coefficients=[]
        )
        return FullAttackReport(
            n=8,
            n_traces=10_000,
            key_recovery=kr,
            key_correct=key_correct,
            forgery_verifies=forgery,
            forged_message=b"msg",
            elapsed_seconds=12.5,
        )

    def test_summary_success(self):
        s = self._fake_report().summary()
        assert "FALCON-8" in s
        assert "10000 measurements" in s
        assert "f recovered: YES" in s
        assert "verifies: YES" in s

    def test_summary_failure(self):
        s = self._fake_report(key_correct=False, forgery=False).summary()
        assert "f recovered: no" in s
        assert "verifies: no" in s

    def test_counts(self):
        r = self._fake_report()
        assert r.n_coefficients == 0
        assert r.n_correct_coefficients == 0
