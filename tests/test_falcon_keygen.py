"""Tests for FALCON key generation (NTRUGen, tree construction, keys)."""

import numpy as np
import pytest

from repro.falcon.ffsampling import LdlLeaf, LdlNode, tree_depth
from repro.falcon.keygen import KeygenError, gs_norm_squared, keygen
from repro.falcon.keys import (
    public_key_from_json,
    public_key_to_json,
    secret_key_from_json,
    secret_key_to_json,
)
from repro.falcon.params import FalconParams, Q
from repro.math import poly


@pytest.fixture(scope="module")
def keypair16():
    return keygen(FalconParams.get(16), seed=b"kg16")


@pytest.fixture(scope="module")
def keypair64():
    return keygen(FalconParams.get(64), seed=b"kg64")


class TestKeygen:
    def test_deterministic(self):
        sk1, _ = keygen(FalconParams.get(8), seed=b"det")
        sk2, _ = keygen(FalconParams.get(8), seed=b"det")
        assert sk1.f == sk2.f and sk1.g == sk2.g and sk1.big_f == sk2.big_f

    def test_different_seeds(self):
        sk1, _ = keygen(FalconParams.get(8), seed=b"s1")
        sk2, _ = keygen(FalconParams.get(8), seed=b"s2")
        assert sk1.f != sk2.f

    @pytest.mark.parametrize("fixture", ["keypair16", "keypair64"])
    def test_ntru_equation(self, fixture, request):
        sk, _ = request.getfixturevalue(fixture)
        n = sk.params.n
        lhs = poly.sub(poly.mul(sk.f, sk.big_g), poly.mul(sk.g, sk.big_f))
        assert lhs == poly.constant(Q, n)

    @pytest.mark.parametrize("fixture", ["keypair16", "keypair64"])
    def test_public_key_relation(self, fixture, request):
        """h = g f^-1 <=> f h = g (mod q)."""
        sk, pk = request.getfixturevalue(fixture)
        fh = poly.mul_mod_q(sk.f, pk.h, Q)
        assert fh == poly.mod_q(sk.g, Q)

    def test_gs_norm_bound_enforced(self, keypair16):
        sk, _ = request_get = keypair16
        assert gs_norm_squared(sk.f, sk.g, Q) <= 1.17**2 * Q

    def test_gs_norm_degenerate(self):
        assert gs_norm_squared([0] * 8, [0] * 8, Q) == float("inf")

    def test_max_attempts_exhausted(self):
        with pytest.raises(KeygenError):
            keygen(FalconParams.get(8), seed=b"never", max_attempts=0)


class TestFalconTree:
    def test_tree_depth(self, keypair16):
        sk, _ = keypair16
        # ffLDL halves the FFT arrays (n/2 slots) down to one slot, so the
        # tree has log2(n) levels of internal nodes above the leaves.
        assert tree_depth(sk.tree) == 4

    def test_leaves_normalized_into_sampler_range(self, keypair16):
        sk, _ = keypair16
        sigmin, sigmax = sk.params.sigmin, 1.8205

        def walk(t):
            if isinstance(t, LdlLeaf):
                assert sigmin - 1e-9 <= t.value <= sigmax + 1e-9
                return
            walk(t.left)
            walk(t.right)

        walk(sk.tree)

    def test_b_hat_rows(self, keypair16):
        """b_hat must be [[FFT(g), -FFT(f)], [FFT(G), -FFT(F)]]."""
        from repro.math import fft

        sk, _ = keypair16
        b00, b01, b10, b11 = sk.b_hat
        np.testing.assert_allclose(b00, fft.fft(sk.g))
        np.testing.assert_allclose(b01, -fft.fft(sk.f))
        np.testing.assert_allclose(b10, fft.fft(sk.big_g))
        np.testing.assert_allclose(b11, -fft.fft(sk.big_f))

    def test_gram_determinant_is_q_squared(self, keypair16):
        """det(B) = fG - gF = q, so det(G) = q^2 at every FFT slot."""
        from repro.falcon.ffsampling import gram_from_basis

        sk, _ = keypair16
        g00, g01, g11 = gram_from_basis(*sk.b_hat)
        det = g00 * g11 - g01 * np.conj(g01)
        np.testing.assert_allclose(det.real, float(Q) ** 2, rtol=1e-8)
        np.testing.assert_allclose(det.imag, 0.0, atol=1e-4)


class TestKeySerialization:
    def test_secret_roundtrip(self, keypair16):
        sk, _ = keypair16
        sk2 = secret_key_from_json(secret_key_to_json(sk))
        assert (sk2.f, sk2.g, sk2.big_f, sk2.big_g, sk2.h) == (
            sk.f,
            sk.g,
            sk.big_f,
            sk.big_g,
            sk.h,
        )

    def test_public_roundtrip(self, keypair16):
        _, pk = keypair16
        pk2 = public_key_from_json(public_key_to_json(pk))
        assert pk2.h == pk.h and pk2.params.n == pk.params.n

    def test_wrong_kind_rejected(self, keypair16):
        sk, pk = keypair16
        with pytest.raises(ValueError):
            secret_key_from_json(public_key_to_json(pk))
        with pytest.raises(ValueError):
            public_key_from_json(secret_key_to_json(sk))

    def test_rebuilt_key_signs(self, keypair16):
        from repro.falcon import sign, verify

        sk, pk = keypair16
        sk2 = secret_key_from_json(secret_key_to_json(sk))
        sig = sign(sk2, b"serialized key signing", seed=5)
        assert verify(pk, b"serialized key signing", sig)
