"""Countermeasure variants: bit-exactness against the fpr emulator and
the end-to-end CT007 drift gates (static plant + dynamic plant).

The bit-exactness tests are the functional contract: a countermeasure
that changes results is not a countermeasure, it is a different
multiplier. The planted-defect tests exercise ``repro-sast verify
--variant`` the way the planted CT001/CT005 tests exercise the baseline
gate.
"""

from __future__ import annotations

import os
import random
import shutil

import pytest

from repro.countermeasures.ct_mul import ct_fpr_mul
from repro.countermeasures.masked_mul import (
    MaskContext,
    RandomMaskSource,
    SimulationMaskSource,
    masked_fpr_mul,
)
from repro.countermeasures.workload import (
    run_ct_workload,
    run_masked_workload,
    variant_patterns,
)
from repro.fpr.emu import MANT_BITS, SIGN_BIT, compose, fpr_mul
from repro.sast.cli import main
from repro.sast.findings import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_CONTRACT = os.path.join(_REPO_ROOT, "leakage-contract.json")

_MANT_MASK = (1 << MANT_BITS) - 1

#: zeros, smallest/largest normals, and overflow/underflow boundary
#: exponents — the places a reimplementation most plausibly diverges
_EDGE_PATTERNS = [
    0,
    SIGN_BIT,                                  # -0.0
    compose(0, 1, 0),                          # min normal
    compose(1, 1, 0),
    compose(0, 2046, _MANT_MASK),              # max normal
    compose(1, 2046, _MANT_MASK),
    compose(0, 1023, 0),                       # 1.0
    compose(1, 1023, _MANT_MASK),
    compose(0, 2046, 0),
    compose(0, 1, _MANT_MASK),
]


def _fuzz_pairs(seed: int, count: int) -> list[tuple[int, int]]:
    rng = random.Random(seed)

    def pat() -> int:
        return compose(
            rng.getrandbits(1), rng.randint(1, 2046), rng.getrandbits(MANT_BITS)
        )

    pairs = [(a, b) for a in _EDGE_PATTERNS for b in _EDGE_PATTERNS]
    pairs += [(pat(), pat()) for _ in range(count)]
    pairs += [(pat(), e) for e in _EDGE_PATTERNS for _ in (0,)]
    return pairs


@pytest.mark.parametrize(
    "source_factory",
    [
        lambda: None,                       # default RandomMaskSource
        lambda: RandomMaskSource(seed=97),
        lambda: SimulationMaskSource(seed=41),
    ],
    ids=["default", "random-source", "simulation-source"],
)
def test_masked_mul_bit_exact(source_factory):
    source = source_factory()
    for x, y in _fuzz_pairs(seed=1337, count=800):
        assert masked_fpr_mul(x, y, source) == fpr_mul(x, y), (hex(x), hex(y))


def test_ct_mul_bit_exact():
    for x, y in _fuzz_pairs(seed=2024, count=800):
        assert ct_fpr_mul(x, y) == fpr_mul(x, y), (hex(x), hex(y))


def test_mask_context_tracks_labels():
    ctx = MaskContext(RandomMaskSource(seed=7))
    m = ctx.fresh_mask("reg", 0x1234, 16)
    assert ctx.mask_of("reg") == m
    assert 0 <= m < (1 << 16)
    with pytest.raises(KeyError):
        ctx.mask_of("missing")


def test_simulation_source_shares_are_key_independent():
    """The simulation coupling makes every share equal the fixed mask
    stream: two different secrets blind to the same share sequence."""
    a = SimulationMaskSource(seed=11)
    b = SimulationMaskSource(seed=11)
    for value_a, value_b in [(0x5555, 0xAAAA), (1, 2), (0xDEAD, 0xBEEF)]:
        share_a = value_a ^ a.fresh_mask(value_a, 16)
        share_b = value_b ^ b.fresh_mask(value_b, 16)
        assert share_a == share_b


def test_variant_patterns_fix_zero_schedule():
    """Zeros sit at fixed slots so the fresh_mask draw schedule is
    key-independent; all key-derived patterns are nonzero normals."""

    class _SK:
        f = list(range(-4, 4))
        g = list(range(3, 11))

    pats = variant_patterns(_SK())
    assert pats[-2:] == [0, 1 << 63]
    for p in pats[:-2]:
        assert p != 0
        assert 1 <= (p >> 52) & 0x7FF <= 2046


def test_workloads_smoke():
    run_masked_workload("unit", 8)
    run_ct_workload("unit", 8)


# -- CT007 end-to-end gates ------------------------------------------------


def _copy_repro(tmp_path) -> str:
    src = os.path.join(_REPO_ROOT, "src", "repro")
    dst = os.path.join(str(tmp_path), "repro")
    shutil.copytree(src, dst, ignore=shutil.ignore_patterns("__pycache__"))
    return dst


def _edit(path: str, old: str, new: str) -> None:
    with open(path, encoding="utf-8") as fh:
        src = fh.read()
    assert old in src
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(src.replace(old, new, 1))


def test_variant_static_verify_is_clean():
    root = os.path.join(_REPO_ROOT, "src", "repro")
    assert (
        main(["verify", root, "--contract", _CONTRACT, "--variant", "masked-mul"])
        == EXIT_CLEAN
    )
    assert (
        main(["verify", root, "--contract", _CONTRACT, "--variant", "ct-mul"])
        == EXIT_CLEAN
    )


def test_unknown_variant_is_an_error(capsys):
    root = os.path.join(_REPO_ROOT, "src", "repro")
    assert (
        main(["verify", root, "--contract", _CONTRACT, "--variant", "nope"])
        == EXIT_ERROR
    )
    assert "contract defines" in capsys.readouterr().err


def test_variant_write_contract_rejected(capsys):
    root = os.path.join(_REPO_ROOT, "src", "repro")
    assert (
        main([
            "verify", root, "--contract", _CONTRACT,
            "--variant", "masked-mul", "--write-contract",
        ])
        == EXIT_ERROR
    )


def test_planted_secret_branch_in_variant_is_drift(tmp_path, capsys):
    """A new secret-dependent branch inside masked_fpr_mul fails the
    *static* gate twice over: untriaged finding (CT001) and a finding
    outside the variant's residual list (CT007)."""
    root = _copy_repro(tmp_path)
    _edit(
        os.path.join(root, "countermeasures", "masked_mul.py"),
        "    sx, bex, fx = decompose(x)\n",
        "    sx, bex, fx = decompose(x)\n"
        "    if fx > 0:\n"
        "        pass\n",
    )
    assert main(["verify", root, "--contract", _CONTRACT]) == EXIT_FINDINGS
    out = capsys.readouterr()
    assert "CT007" in out.out
    assert "drift" in out.out


@pytest.mark.slow
def test_planted_unmasked_register_fails_dynamic_gate(tmp_path, capsys):
    """A statically invisible unmask (peeking a share's clear value into
    a local) must be caught by the dynamic replay: the planted line
    digests key-dependently but is not an accepted clear-boundary line."""
    root = _copy_repro(tmp_path)
    _edit(
        os.path.join(root, "countermeasures", "masked_mul.py"),
        "    e_s = ",
        "    probe = mx_s ^ ctx.mask_of(\"mx\")\n"
        "    probe = probe & ((1 << 53) - 1)\n"
        "    e_s = ",
    )
    assert (
        main([
            "verify", root, "--contract", _CONTRACT,
            "--variant", "masked-mul", "--oracle",
        ])
        == EXIT_FINDINGS
    )
    out = capsys.readouterr()
    assert "CT007" in out.out
    assert "probe" in out.out
