"""Tests for empirical success-rate / guessing-entropy estimation."""

import numpy as np
import pytest

from repro.analysis.success_rate import ComponentOutcome, SuccessCurve, success_curve
from repro.attack.sign_exp import recover_sign
from repro.falcon import FalconParams, keygen
from repro.leakage import CaptureCampaign, DeviceModel


@pytest.fixture(scope="module")
def tracesets():
    sk, _ = keygen(FalconParams.get(8), seed=b"sr")
    camp = CaptureCampaign(sk=sk, n_traces=4000, device=DeviceModel(seed=3), seed=4)
    return [camp.capture(j) for j in range(4)]


def sign_attack(ts):
    rec = recover_sign(ts)
    truth = int(ts.true_secret >> 63)
    return [rec.bit, 1 - rec.bit], truth


class TestSuccessCurve:
    def test_curve_structure(self, tracesets):
        curve = success_curve(tracesets, sign_attack, [200, 1000, 4000])
        assert list(curve.checkpoints) == [200, 1000, 4000]
        assert len(curve.outcomes) == 3 * len(tracesets)

    def test_success_rate_monotone_trend(self, tracesets):
        curve = success_curve(tracesets, sign_attack, [100, 4000])
        sr = curve.success_rate()
        assert sr[-1] >= sr[0] - 0.26  # allow one flip of noise at tiny D
        assert sr[-1] == 1.0  # sign always recovered at 4k traces

    def test_guessing_entropy_bounds(self, tracesets):
        curve = success_curve(tracesets, sign_attack, [4000])
        ge = curve.guessing_entropy()
        assert 0.0 <= ge[0] <= 1.0

    def test_traces_for_success_rate(self, tracesets):
        curve = success_curve(tracesets, sign_attack, [100, 500, 2000, 4000])
        d = curve.traces_for_success_rate(1.0)
        assert d is not None and d <= 4000

    def test_order_k_success(self):
        outcomes = [
            ComponentOutcome(target_index=0, n_traces=10, rank=1),
            ComponentOutcome(target_index=1, n_traces=10, rank=0),
        ]
        curve = SuccessCurve(checkpoints=np.array([10]), outcomes=outcomes)
        assert curve.success_rate(order=1)[0] == 0.5
        assert curve.success_rate(order=2)[0] == 1.0

    def test_never_successful_returns_none(self):
        outcomes = [ComponentOutcome(target_index=0, n_traces=10, rank=5)]
        curve = SuccessCurve(checkpoints=np.array([10]), outcomes=outcomes)
        assert curve.traces_for_success_rate(1.0) is None
