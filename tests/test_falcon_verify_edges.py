"""Edge-case tests for signature verification."""

import pytest

from repro.falcon import FalconParams, Signature, keygen, sign, verify
from repro.falcon.compress import compress
from repro.falcon.hash_to_point import hash_to_point
from repro.falcon.verify import recover_s1
from repro.math import ntt, poly


@pytest.fixture(scope="module")
def kp():
    return keygen(FalconParams.get(16), seed=b"verify-edge")


class TestVerifyEdges:
    def test_empty_signature_rejected(self, kp):
        _, pk = kp
        sig = Signature(salt=bytes(40), s2_compressed=b"")
        assert not verify(pk, b"m", sig)

    def test_garbage_compressed_rejected(self, kp):
        _, pk = kp
        params = pk.params
        blob_len = (params.compressed_sig_bits + 7) // 8
        sig = Signature(salt=bytes(40), s2_compressed=b"\xff" * blob_len)
        assert not verify(pk, b"m", sig)

    def test_oversized_s2_rejected(self, kp):
        """A decompressible s2 with a huge norm must fail the bound."""
        _, pk = kp
        params = pk.params
        # 16 * 300^2 = 1.44M > beta^2 = 892k, and the encoding still
        # fits the FALCON-16 bit budget exactly
        big = [300] * params.n
        blob = compress(big, params.compressed_sig_bits)
        sig = Signature(salt=bytes(40), s2_compressed=blob)
        assert not verify(pk, b"m", sig)

    def test_zero_s2_usually_rejected(self, kp):
        """s2 = 0 forces s1 = c, whose norm is far above the bound."""
        _, pk = kp
        params = pk.params
        blob = compress([0] * params.n, params.compressed_sig_bits)
        sig = Signature(salt=bytes(40), s2_compressed=blob)
        assert not verify(pk, b"some message", sig)

    def test_signature_not_transferable_across_messages(self, kp):
        sk, pk = kp
        sig = sign(sk, b"message A", seed=1)
        assert verify(pk, b"message A", sig)
        assert not verify(pk, b"message B", sig)

    def test_salt_is_bound(self, kp):
        sk, pk = kp
        sig = sign(sk, b"m", seed=2)
        flipped_salt = bytes([sig.salt[0] ^ 1]) + sig.salt[1:]
        assert not verify(pk, b"m", Signature(salt=flipped_salt, s2_compressed=sig.s2_compressed))


class TestRecoverS1:
    def test_linear_identity(self, kp):
        """recover_s1 must satisfy s1 + s2 h = c (mod q) by construction."""
        _, pk = kp
        q, n = pk.params.q, pk.params.n
        c = hash_to_point(b"identity", q, n)
        s2 = [3, -5] + [0] * (n - 2)
        s1 = recover_s1(pk, c, s2)
        lhs = poly.mod_q(poly.add(s1, ntt.mul_ntt([v % q for v in s2], pk.h, q)), q)
        assert lhs == c

    def test_centered_range(self, kp):
        _, pk = kp
        q, n = pk.params.q, pk.params.n
        c = hash_to_point(b"center", q, n)
        s1 = recover_s1(pk, c, [1] * n)
        assert all(-q // 2 <= v <= q // 2 for v in s1)
