"""Full-scale FALCON-512/1024 integration tests (slower)."""

import pytest

from repro.falcon import FalconParams, keygen, sign, verify
from repro.falcon.codec import encode_public_key, encode_secret_key
from repro.math import poly


@pytest.mark.slow
class TestFalcon512:
    @pytest.fixture(scope="class")
    def kp(self):
        return keygen(FalconParams.get(512), seed=b"full-512")

    def test_keygen_valid(self, kp):
        sk, pk = kp
        lhs = poly.sub(poly.mul(sk.f, sk.big_g), poly.mul(sk.g, sk.big_f))
        assert lhs == poly.constant(12289, 512)
        # coefficient ranges from the paper: f, g within [-127, 127]
        assert max(abs(c) for c in sk.f) <= 127
        assert max(abs(c) for c in sk.g) <= 127

    def test_sign_verify(self, kp):
        sk, pk = kp
        sig = sign(sk, b"standard-size message", seed=1)
        assert len(sig.encoded()) == 666  # spec signature length
        assert verify(pk, b"standard-size message", sig)
        assert not verify(pk, b"standard-size messagf", sig)

    def test_spec_encodings(self, kp):
        sk, pk = kp
        assert len(encode_public_key(pk)) == 897
        assert len(encode_secret_key(sk)) == 1281


@pytest.mark.slow
class TestFalcon1024:
    def test_keygen_sign_verify(self):
        sk, pk = keygen(FalconParams.get(1024), seed=b"full-1024")
        lhs = poly.sub(poly.mul(sk.f, sk.big_g), poly.mul(sk.g, sk.big_f))
        assert lhs == poly.constant(12289, 1024)
        sig = sign(sk, b"falcon-1024", seed=2)
        assert len(sig.encoded()) == 1280
        assert verify(pk, b"falcon-1024", sig)
        assert len(encode_public_key(pk)) == 1 + (1024 * 14 + 7) // 8  # 1793
