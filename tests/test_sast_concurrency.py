"""Concurrency/durability pass (CC001-CC002) fixtures."""

from __future__ import annotations

from tests.sast_util import by_rule, findings_for, line_of


_POOL_FIXTURE = """\
from concurrent.futures import ProcessPoolExecutor

TOTALS = {}
COUNTS = []

def work(item):
    TOTALS[item] = 1
    COUNTS.append(item)
    return item

def helper(item):
    global TOTALS
    TOTALS = {}

def chained(item):
    helper(item)
    return item

def run(items):
    with ProcessPoolExecutor() as ex:
        list(ex.map(work, items))
        fut = ex.submit(chained, items[0])
    return fut
"""


def test_worker_reachable_module_state_mutation(tmp_path):
    findings = findings_for(tmp_path, {"pool.py": _POOL_FIXTURE})
    cc = by_rule(findings, "CC001")
    lines = sorted(f.line for f in cc)
    assert lines == [
        line_of(_POOL_FIXTURE, "TOTALS[item] = 1"),
        line_of(_POOL_FIXTURE, "COUNTS.append(item)"),
        line_of(_POOL_FIXTURE, "    TOTALS = {}"),
    ]
    # the transitive callee (helper, via chained) is reached, and the
    # parent-side run() itself is not flagged
    assert all(f.function != "pkg.pool.run" for f in cc)


def test_same_mutations_without_pool_are_clean(tmp_path):
    src = _POOL_FIXTURE.replace(
        "from concurrent.futures import ProcessPoolExecutor\n", ""
    ).replace("with ProcessPoolExecutor() as ex:", "if items:")
    src = src.replace("list(ex.map(work, items))", "work(items[0])")
    src = src.replace("fut = ex.submit(chained, items[0])", "fut = chained(items[0])")
    findings = findings_for(tmp_path, {"serial.py": src})
    assert by_rule(findings, "CC001") == []


def test_raw_write_modes_flagged(tmp_path):
    src = """\
    from pathlib import Path

    def dump(path, text, blob):
        with open(path, "w") as fh:
            fh.write(text)
        Path(path).write_bytes(blob)
        with open(path) as fh:
            return fh.read()

    def journal(path, line):
        with open(path, "a") as fh:
            fh.write(line)
    """
    findings = findings_for(tmp_path, {"save.py": src})
    cc = by_rule(findings, "CC002")
    lines = sorted(f.line for f in cc)
    # reads and append-mode opens are allowed
    assert lines == [
        line_of(src, 'open(path, "w")'),
        line_of(src, "write_bytes(blob)"),
    ]


def test_atomic_output_path_block_is_exempt(tmp_path):
    src = """\
    import numpy as np
    from repro.utils.io import atomic_output_path

    def save(path, arr):
        with atomic_output_path(path) as tmp:
            with open(tmp, "wb") as fh:
                np.save(fh, arr)

    def save_raw(path, arr):
        np.save(path, arr)
    """
    findings = findings_for(tmp_path, {"store.py": src})
    cc = by_rule(findings, "CC002")
    assert [f.line for f in cc] == [line_of(src, "np.save(path, arr)")]


def test_utils_io_module_is_exempt(tmp_path):
    src = """\
    def atomic_write_bytes(path, blob):
        with open(path, "wb") as fh:
            fh.write(blob)
    """
    findings = findings_for(tmp_path, {"utils/io.py": src})
    assert by_rule(findings, "CC002") == []
