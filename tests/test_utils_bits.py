"""Unit + property tests for repro.utils.bits."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.bits import (
    bit_reverse,
    bits_of,
    from_bits,
    hamming_distance,
    hamming_weight,
    hamming_weight_array,
    mask,
)


class TestMask:
    def test_zero(self):
        assert mask(0) == 0

    def test_small(self):
        assert mask(1) == 1
        assert mask(8) == 0xFF
        assert mask(25) == 0x1FFFFFF

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestHammingWeight:
    def test_known_values(self):
        assert hamming_weight(0) == 0
        assert hamming_weight(1) == 1
        assert hamming_weight(0xFF) == 8
        assert hamming_weight(0b1010101) == 4

    def test_wide_value(self):
        assert hamming_weight((1 << 106) - 1) == 106

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            hamming_weight(-1)

    @given(st.integers(min_value=0, max_value=1 << 128))
    def test_matches_bin_count(self, v):
        assert hamming_weight(v) == bin(v).count("1")

    @given(st.integers(min_value=0, max_value=1 << 64), st.integers(min_value=0, max_value=64))
    def test_shift_invariance(self, v, k):
        """The property behind multiplication false positives."""
        assert hamming_weight(v << k) == hamming_weight(v)


class TestHammingDistance:
    def test_self_distance_zero(self):
        assert hamming_distance(12345, 12345) == 0

    def test_complement(self):
        assert hamming_distance(0, 0xFF) == 8

    @given(st.integers(min_value=0, max_value=1 << 64), st.integers(min_value=0, max_value=1 << 64))
    def test_symmetry(self, a, b):
        assert hamming_distance(a, b) == hamming_distance(b, a)

    @given(
        st.integers(min_value=0, max_value=1 << 64),
        st.integers(min_value=0, max_value=1 << 64),
        st.integers(min_value=0, max_value=1 << 64),
    )
    def test_triangle_inequality(self, a, b, c):
        assert hamming_distance(a, c) <= hamming_distance(a, b) + hamming_distance(b, c)


class TestHammingWeightArray:
    def test_matches_scalar(self):
        rng = np.random.default_rng(0)
        vals = rng.integers(0, 1 << 62, size=1000).astype(np.uint64)
        hw = hamming_weight_array(vals)
        for v, h in zip(vals, hw):
            assert h == hamming_weight(int(v))

    def test_width_masking(self):
        vals = np.array([0xFFFFFFFFFFFFFFFF], dtype=np.uint64)
        assert hamming_weight_array(vals, width=8)[0] == 8
        assert hamming_weight_array(vals, width=64)[0] == 64

    def test_2d_shape_preserved(self):
        vals = np.arange(12, dtype=np.uint64).reshape(3, 4)
        assert hamming_weight_array(vals).shape == (3, 4)

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            hamming_weight_array(np.array([1], dtype=np.uint64), width=0)
        with pytest.raises(ValueError):
            hamming_weight_array(np.array([1], dtype=np.uint64), width=65)

    def test_top_bit(self):
        vals = np.array([1 << 63], dtype=np.uint64)
        assert hamming_weight_array(vals)[0] == 1


class TestBitLists:
    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_roundtrip(self, v):
        assert from_bits(bits_of(v, 32)) == v

    def test_from_bits_rejects_non_bits(self):
        with pytest.raises(ValueError):
            from_bits([0, 2, 1])

    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    def test_bit_reverse_involution(self, v):
        assert bit_reverse(bit_reverse(v, 16), 16) == v

    def test_bit_reverse_known(self):
        assert bit_reverse(0b0001, 4) == 0b1000
        assert bit_reverse(0b1101, 4) == 0b1011
