"""Statistical tests for the discrete Gaussian reference sampler."""

import math

import pytest

from repro.math.gaussian import dgauss_pmf, sample_dgauss, sample_poly_dgauss
from repro.utils.rng import ChaCha20Prng


class TestPmf:
    def test_normalized(self):
        total = sum(dgauss_pmf(z, 0.0, 2.0) for z in range(-30, 31))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_symmetric_around_integer_center(self):
        for z in range(1, 10):
            assert dgauss_pmf(z, 0.0, 3.0) == pytest.approx(dgauss_pmf(-z, 0.0, 3.0))

    def test_mode_at_center(self):
        assert dgauss_pmf(0, 0.0, 1.5) > dgauss_pmf(1, 0.0, 1.5)

    def test_bad_sigma(self):
        with pytest.raises(ValueError):
            dgauss_pmf(0, 0.0, 0.0)


class TestSampler:
    def test_deterministic_with_seed(self):
        a = [sample_dgauss(0.0, 2.0, ChaCha20Prng(b"s")) for _ in range(20)]
        b = [sample_dgauss(0.0, 2.0, ChaCha20Prng(b"s")) for _ in range(20)]
        assert a == b

    def test_moments(self):
        rng = ChaCha20Prng(b"moments")
        mu, sigma, n = 3.7, 1.8, 4000
        xs = [sample_dgauss(mu, sigma, rng) for _ in range(n)]
        mean = sum(xs) / n
        var = sum((x - mean) ** 2 for x in xs) / n
        assert mean == pytest.approx(mu, abs=5 * sigma / math.sqrt(n))
        assert var == pytest.approx(sigma * sigma, rel=0.2)

    def test_chi_square_against_pmf(self):
        stats = pytest.importorskip("scipy.stats")
        rng = ChaCha20Prng(b"chi2")
        sigma, n = 2.0, 6000
        xs = [sample_dgauss(0.0, sigma, rng) for _ in range(n)]
        support = list(range(-6, 7))
        observed = [sum(1 for x in xs if x == z) for z in support]
        observed.append(n - sum(observed))  # tail bucket
        expected = [n * dgauss_pmf(z, 0.0, sigma) for z in support]
        expected.append(n - sum(expected))
        # merge the tiny tail bucket into the last support bin if needed
        if expected[-1] < 5:
            expected[-2] += expected[-1]
            observed[-2] += observed[-1]
            expected.pop()
            observed.pop()
        chi2, p = stats.chisquare(observed, f_exp=expected)
        assert p > 1e-4, f"sampler deviates from pmf (chi2={chi2:.1f}, p={p:.2e})"

    def test_bad_sigma_rejected(self):
        with pytest.raises(ValueError):
            sample_dgauss(0.0, -1.0, ChaCha20Prng(b"x"))

    def test_poly_sampler_shape(self):
        out = sample_poly_dgauss(64, 4.0, ChaCha20Prng(b"p"))
        assert len(out) == 64
        assert all(isinstance(v, int) for v in out)
