"""Tests for the instrumented multiplication (the attack target)."""

import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fpr import emu
from repro.fpr.trace import (
    EXP_REBIAS,
    LOW_BITS,
    MUL_STEP_LABELS,
    MUL_STEP_WIDTHS,
    fpr_mul_trace,
    mul_limbs,
)


def bits(x: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", x))[0]


def normal_double():
    def build(sign, exp, mant):
        return struct.unpack(
            "<d", struct.pack("<Q", (sign << 63) | ((exp + 1023) << 52) | mant)
        )[0]

    return st.builds(build, st.integers(0, 1), st.integers(-300, 300), st.integers(0, (1 << 52) - 1))


class TestLimbSplit:
    def test_split_widths(self):
        lo, hi = mul_limbs((1 << 52) | 0x123456789ABCD)
        assert lo < 1 << LOW_BITS
        assert 1 << 26 <= hi < 1 << 28  # MSB (implicit 1) always set

    @given(st.integers(1 << 52, (1 << 53) - 1))
    def test_split_recombines(self, m):
        lo, hi = mul_limbs(m)
        assert (hi << LOW_BITS) | lo == m

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            mul_limbs((1 << 52) - 1)
        with pytest.raises(ValueError):
            mul_limbs(1 << 53)


class TestTraceStructure:
    def test_labels_cover_all_steps(self):
        t = fpr_mul_trace(bits(1.5), bits(2.5))
        assert t.labels == list(MUL_STEP_LABELS)

    def test_widths_table_complete(self):
        assert set(MUL_STEP_WIDTHS) == set(MUL_STEP_LABELS)

    def test_value_lookup(self):
        t = fpr_mul_trace(bits(3.0), bits(7.0))
        assert t.value("sign_out") == 0
        with pytest.raises(KeyError):
            t.value("nonexistent")

    def test_zero_operand_short_circuits(self):
        t = fpr_mul_trace(bits(0.0), bits(2.0))
        assert t.labels == ["result"]
        assert emu.is_zero(t.result)

    @given(normal_double(), normal_double())
    @settings(max_examples=300)
    def test_values_fit_declared_widths(self, x, y):
        t = fpr_mul_trace(bits(x), bits(y))
        for label, value in t.steps:
            assert 0 <= value < 1 << MUL_STEP_WIDTHS[label], label


class TestTraceSemantics:
    @given(normal_double(), normal_double())
    @settings(max_examples=300)
    def test_result_matches_emu(self, x, y):
        t = fpr_mul_trace(bits(x), bits(y))
        assert t.result == emu.fpr_mul(bits(x), bits(y))

    @given(normal_double(), normal_double())
    @settings(max_examples=200)
    def test_product_reconstruction(self, x, y):
        """s_hi and sticky exactly partition the 106-bit product."""
        bx, by = bits(x), bits(y)
        t = fpr_mul_trace(bx, by)
        _, mx, _ = emu._unpack_normal(bx)
        _, my, _ = emu._unpack_normal(by)
        product = mx * my
        assert (t.value("s_hi") << 50) | t.value("sticky") == product

    @given(normal_double(), normal_double())
    @settings(max_examples=200)
    def test_partial_products(self, x, y):
        bx, by = bits(x), bits(y)
        t = fpr_mul_trace(bx, by)
        _, mx, _ = emu._unpack_normal(bx)
        _, my, _ = emu._unpack_normal(by)
        x_lo, x_hi = mul_limbs(mx)
        y_lo, y_hi = mul_limbs(my)
        assert t.value("p_ll") == x_lo * y_lo
        assert t.value("p_lh") == x_lo * y_hi
        assert t.value("p_hl") == x_hi * y_lo
        assert t.value("p_hh") == x_hi * y_hi
        assert t.value("s_lo") == (x_lo * y_lo >> LOW_BITS) + x_lo * y_hi

    @given(normal_double(), normal_double())
    @settings(max_examples=200)
    def test_sign_exponent_steps(self, x, y):
        bx, by = bits(x), bits(y)
        t = fpr_mul_trace(bx, by)
        sx, ex, _ = emu.decompose(bx)
        sy, ey, _ = emu.decompose(by)
        assert t.value("sign_out") == sx ^ sy
        assert t.value("exp_sum") == ex + ey
        assert t.value("exp_biased") == (ex + ey - EXP_REBIAS) & 0xFFFFFFFF

    def test_shift_alias_has_identical_product_hw(self):
        """The false-positive mechanism: D and 2D give the same HW at the
        multiplication but different values at the addition."""
        from repro.utils.bits import hamming_weight

        y = bits(1.2345)
        _, my, _ = emu._unpack_normal(y)
        y_lo, y_hi = mul_limbs(my)
        d = 0x00ABCDE
        hw_mult_d = hamming_weight(d * y_lo)
        hw_mult_2d = hamming_weight((2 * d) * y_lo)
        assert hw_mult_d == hw_mult_2d  # indistinguishable at the multiply
        s_lo_d = ((d * y_lo) >> LOW_BITS) + d * y_hi
        s_lo_2d = (((2 * d) * y_lo) >> LOW_BITS) + (2 * d) * y_hi
        assert hamming_weight(s_lo_d) != hamming_weight(s_lo_2d) or s_lo_d != s_lo_2d


class TestVectorizedConsistency:
    def test_mul_step_values_matches_scalar(self):
        from repro.leakage.synth import mul_step_values

        rng = np.random.default_rng(42)
        xs = rng.standard_normal(300) * 10.0 ** rng.integers(-5, 6, 300)
        ys = rng.standard_normal(300) * 10.0 ** rng.integers(-5, 6, 300)
        xp, yp = xs.view(np.uint64), ys.view(np.uint64)
        vals = mul_step_values(xp, yp)
        assert vals.shape == (300, len(MUL_STEP_LABELS))
        for d in range(300):
            t = fpr_mul_trace(int(xp[d]), int(yp[d]))
            assert [int(v) for v in vals[d]] == t.values
