"""Tests for the masking and shuffling countermeasure models (V-B)."""

import numpy as np
import pytest

from repro.attack.config import AttackConfig
from repro.attack.sign_exp import recover_sign
from repro.attack.strawman import straightforward_mantissa_attack
from repro.countermeasures import MaskingTransform, ShufflingTransform
from repro.countermeasures.masking import DEFAULT_MASKED_STEPS
from repro.falcon import FalconParams, keygen
from repro.fpr.trace import MUL_STEP_LABELS
from repro.leakage import CaptureCampaign, DeviceModel


@pytest.fixture(scope="module")
def kp():
    return keygen(FalconParams.get(8), seed=b"cm")


def capture(sk, transform, n=3000, seed=21):
    camp = CaptureCampaign(
        sk=sk,
        n_traces=n,
        device=DeviceModel(seed=seed),
        value_transform=transform,
    )
    return camp.capture(0)


class TestMaskingTransform:
    def test_unknown_step_rejected(self):
        with pytest.raises(ValueError):
            MaskingTransform(masked_steps=("bogus",))

    def test_masked_values_randomized(self):
        xform = MaskingTransform()
        values = np.full((100, len(MUL_STEP_LABELS)), 12345, dtype=np.uint64)
        out = xform(values, np.random.default_rng(0))
        col = MUL_STEP_LABELS.index("p_ll")
        assert len(np.unique(out[:, col])) > 50  # same input, fresh masks

    def test_unmasked_steps_untouched(self):
        xform = MaskingTransform(masked_steps=("p_ll",))
        values = np.full((10, len(MUL_STEP_LABELS)), 7, dtype=np.uint64)
        out = xform(values, np.random.default_rng(0))
        other = MUL_STEP_LABELS.index("load_y_lo")
        np.testing.assert_array_equal(out[:, other], values[:, other])

    @staticmethod
    def _reference_call(xform, values, rng):
        """The pre-vectorization per-column loop, kept as the oracle."""
        from repro.countermeasures.masking import _random_masks

        out = values.copy()
        d = out.shape[0]
        for col, width in xform._indices:
            out[:, col] = out[:, col] ^ _random_masks(rng, d, width)
        return out

    @pytest.mark.parametrize("d", [1, 2, 7, 64, 101])
    @pytest.mark.parametrize("prime_buffer", [False, True])
    def test_batched_masks_bit_identical_to_loop(self, d, prime_buffer):
        """One batched RNG call must reproduce the per-column loop
        exactly — masks, and the generator state it leaves behind
        (including the half-word buffer odd batch sizes strand)."""
        xform = MaskingTransform()
        values = np.arange(d * len(MUL_STEP_LABELS), dtype=np.uint64).reshape(
            d, len(MUL_STEP_LABELS)
        )
        rng_new = np.random.default_rng(1234)
        rng_ref = np.random.default_rng(1234)
        if prime_buffer:
            # leave a cached 32-bit half in each generator's buffer
            rng_new.integers(0, 2, size=1, dtype=np.int64)
            rng_ref.integers(0, 2, size=1, dtype=np.int64)
        np.testing.assert_array_equal(
            xform(values, rng_new), self._reference_call(xform, values, rng_ref)
        )
        # end-state: later bounded draws and doubles must not diverge
        np.testing.assert_array_equal(
            rng_new.integers(0, 5, size=9), rng_ref.integers(0, 5, size=9)
        )
        np.testing.assert_array_equal(rng_new.normal(size=4), rng_ref.normal(size=4))
        # a second masked batch keeps tracking the loop
        np.testing.assert_array_equal(
            xform(values, rng_new), self._reference_call(xform, values, rng_ref)
        )

    def test_default_covers_all_secret_steps(self):
        secret_bearing = {"p_ll", "p_lh", "s_lo", "p_hl", "s_mid", "p_hh", "s_hi",
                          "mant_out", "exp_sum", "sign_out", "result"}
        assert secret_bearing <= set(DEFAULT_MASKED_STEPS)

    def test_masking_defeats_first_order_cpa(self, kp):
        """The paper's suggested countermeasure: no first-order leak."""
        sk, _ = kp
        ts = capture(sk, MaskingTransform())
        sig = (ts.true_secret & ((1 << 52) - 1)) | (1 << 52)
        true_lo = sig & ((1 << 25) - 1)
        rng = np.random.default_rng(1)
        guesses = np.unique(
            np.concatenate([[true_lo], rng.integers(1, 1 << 25, 200)]).astype(np.uint64)
        )
        res = straightforward_mantissa_attack(ts, guesses, true_limb=true_lo)
        # the correct guess must NOT be significant anymore
        assert res.cpa.scores.max() < 3 * res.cpa.threshold()

    def test_masking_defeats_sign_attack(self, kp):
        sk, _ = kp
        ts = capture(sk, MaskingTransform(), seed=22)
        rec = recover_sign(ts)
        assert rec.score < 3 * 0.05  # no significant correlation either way


class TestShufflingTransform:
    def test_unknown_step_rejected(self):
        with pytest.raises(ValueError):
            ShufflingTransform(group=("p_ll", "bogus"))

    def test_rows_are_permutations(self):
        xform = ShufflingTransform()
        values = np.zeros((50, len(MUL_STEP_LABELS)), dtype=np.uint64)
        cols = [MUL_STEP_LABELS.index(lab) for lab in xform.group]
        for i, c in enumerate(cols):
            values[:, c] = i + 1
        out = xform(values, np.random.default_rng(0))
        for row in out[:, cols]:
            assert sorted(row.tolist()) == [1, 2, 3, 4]

    def test_shuffling_occurs(self):
        xform = ShufflingTransform()
        values = np.zeros((200, len(MUL_STEP_LABELS)), dtype=np.uint64)
        cols = [MUL_STEP_LABELS.index(lab) for lab in xform.group]
        for i, c in enumerate(cols):
            values[:, c] = i + 1
        out = xform(values, np.random.default_rng(0))
        assert len(np.unique(out[:, cols], axis=0)) > 10

    def test_shuffling_attenuates_cpa(self, kp):
        """Hiding: the correct-guess correlation drops by about the
        shuffle factor but does not vanish."""
        sk, _ = kp
        ts_plain = capture(sk, None, n=4000, seed=30)
        ts_shuf = capture(sk, ShufflingTransform(), n=4000, seed=30)
        sig = (ts_plain.true_secret & ((1 << 52) - 1)) | (1 << 52)
        true_lo = sig & ((1 << 25) - 1)
        guesses = np.array([true_lo], dtype=np.uint64)
        plain = straightforward_mantissa_attack(ts_plain, guesses, true_limb=true_lo)
        shuf = straightforward_mantissa_attack(ts_shuf, guesses, true_limb=true_lo)
        assert shuf.cpa.scores[0] < plain.cpa.scores[0]
        assert shuf.cpa.scores[0] > 0  # attenuated, not eliminated
