"""The ``# sast:`` annotation grammar, including AN001 misuse findings."""

from __future__ import annotations

from tests.sast_util import by_rule, findings_for, line_of

from repro.sast.annotations import extract_annotations


def test_declassify_with_reason_parses():
    src = "x = 1  # sast: declassify(reason=documented and reviewed)\n"
    annotations, errors = extract_annotations(src, "m.py")
    assert errors == []
    ann = annotations[1]
    assert ann.kind == "declassify"
    assert ann.reason == "documented and reviewed"
    assert ann.suppresses("SF001") and ann.suppresses("CC002")


def test_declassify_rule_filter():
    src = "x = 1  # sast: declassify(rules=SF001|DT002, reason=narrow waiver)\n"
    annotations, errors = extract_annotations(src, "m.py")
    assert errors == []
    ann = annotations[1]
    assert ann.rules == ("SF001", "DT002")
    assert ann.suppresses("SF001") and not ann.suppresses("SF003")


def test_declassify_without_reason_is_an001():
    src = "x = 1  # sast: declassify\n"
    annotations, errors = extract_annotations(src, "m.py")
    assert annotations == {}
    assert [e.rule for e in errors] == ["AN001"]
    assert "reason" in errors[0].message


def test_unknown_kind_and_unknown_rule_are_an001():
    src = (
        "a = 1  # sast: declasify(reason=typo in the kind)\n"
        "b = 2  # sast: declassify(rules=ZZ999, reason=no such rule)\n"
    )
    _, errors = extract_annotations(src, "m.py")
    assert sorted(e.line for e in errors) == [1, 2]
    assert all(e.rule == "AN001" for e in errors)


def test_mid_comment_mention_is_not_an_annotation():
    src = "x = 1  # see docs about sast: annotations\n"
    annotations, errors = extract_annotations(src, "m.py")
    assert annotations == {} and errors == []


def test_annotation_inside_string_is_ignored():
    src = 's = "# sast: declassify"\n'
    annotations, errors = extract_annotations(src, "m.py")
    assert annotations == {} and errors == []


def test_empty_rules_list_is_an001(tmp_path):
    # `rules=|` parses to zero rule ids; accepting it would silently widen
    # a narrow waiver into a suppress-everything one.
    src = """\
    def f(sk):
        if sk.f[0] > 0:  # sast: declassify(rules=|, reason=oops)
            return 1
        return 0
    """
    findings = findings_for(tmp_path, {"m.py": src})
    an = by_rule(findings, "AN001")
    assert [f.line for f in an] == [line_of(src, "declassify")]
    assert "empty" in an[0].message
    # the malformed waiver suppresses nothing
    assert len(by_rule(findings, "SF001")) == 1


def test_missing_comma_after_rules_is_an001():
    src = "x = 1  # sast: declassify(rules=SF001 reason=forgot the comma)\n"
    annotations, errors = extract_annotations(src, "m.py")
    assert annotations == {}
    assert [e.rule for e in errors] == ["AN001"]


def test_def_line_rule_filter_scopes_to_listed_rules_only(tmp_path):
    # A def-line declassify with rules= suppresses exactly those rules in
    # the function body; other rules keep firing.
    src = """\
    def mixed(sk):  # sast: declassify(rules=SF001, reason=branch reviewed; timing still live)
        if sk.f[0] > 0:
            return sk.f[1] % 3
        return 0
    """
    findings = findings_for(tmp_path, {"m.py": src})
    assert by_rule(findings, "SF001") == []
    assert [f.line for f in by_rule(findings, "SF003")] == [line_of(src, "% 3")]


def test_def_line_declassify_survives_decorators(tmp_path):
    # stmt.lineno of a decorated def is the `def` line, so the annotation
    # on that line must still attach to the function.
    src = """\
    def wraps(fn):
        return fn

    @wraps
    def covered(sk):  # sast: declassify(rules=SF001|SF003, reason=leakage model boundary)
        if sk.f[0] > 0:
            return sk.f[1] % 3
        return 0
    """
    findings = findings_for(tmp_path, {"m.py": src})
    assert by_rule(findings, "SF001") == []
    assert by_rule(findings, "SF003") == []
    assert by_rule(findings, "AN001") == []


def test_outer_declassify_does_not_cover_nested_function(tmp_path):
    # Declassify scopes to exactly the annotated def. A def nested inside
    # it is a separate scope and must keep its findings.
    src = """\
    def outer(sk):  # sast: declassify(rules=SF001, reason=outer body reviewed)
        if sk.f[0] > 0:
            pass

        def inner(x):
            if x > 0:
                return 1
            return 0

        return inner(sk.f[1])
    """
    findings = findings_for(tmp_path, {"m.py": src})
    sf = by_rule(findings, "SF001")
    assert [f.line for f in sf] == [line_of(src, "if x > 0")]
    assert sf[0].function == "pkg.m.outer.inner"


def test_nested_function_declassify_does_not_cover_outer(tmp_path):
    src = """\
    def outer(sk):
        def inner(x):  # sast: declassify(rules=SF001, reason=inner reviewed)
            if x > 0:
                return 1
            return 0

        if sk.f[0] > 0:
            pass
        return inner(sk.f[1])
    """
    findings = findings_for(tmp_path, {"m.py": src})
    sf = by_rule(findings, "SF001")
    assert [f.line for f in sf] == [line_of(src, "if sk.f[0] > 0")]
    assert sf[0].function == "pkg.m.outer"


def test_an001_surfaces_through_collect_findings(tmp_path):
    src = """\
    def f(sk):
        if sk.f[0] > 0:  # sast: declassify
            return 1
        return 0
    """
    findings = findings_for(tmp_path, {"m.py": src})
    an = by_rule(findings, "AN001")
    assert [f.line for f in an] == [line_of(src, "declassify")]
    # the malformed declassify must NOT suppress the underlying finding
    assert len(by_rule(findings, "SF001")) == 1
