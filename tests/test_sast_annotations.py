"""The ``# sast:`` annotation grammar, including AN001 misuse findings."""

from __future__ import annotations

from tests.sast_util import by_rule, findings_for, line_of

from repro.sast.annotations import extract_annotations


def test_declassify_with_reason_parses():
    src = "x = 1  # sast: declassify(reason=documented and reviewed)\n"
    annotations, errors = extract_annotations(src, "m.py")
    assert errors == []
    ann = annotations[1]
    assert ann.kind == "declassify"
    assert ann.reason == "documented and reviewed"
    assert ann.suppresses("SF001") and ann.suppresses("CC002")


def test_declassify_rule_filter():
    src = "x = 1  # sast: declassify(rules=SF001|DT002, reason=narrow waiver)\n"
    annotations, errors = extract_annotations(src, "m.py")
    assert errors == []
    ann = annotations[1]
    assert ann.rules == ("SF001", "DT002")
    assert ann.suppresses("SF001") and not ann.suppresses("SF003")


def test_declassify_without_reason_is_an001():
    src = "x = 1  # sast: declassify\n"
    annotations, errors = extract_annotations(src, "m.py")
    assert annotations == {}
    assert [e.rule for e in errors] == ["AN001"]
    assert "reason" in errors[0].message


def test_unknown_kind_and_unknown_rule_are_an001():
    src = (
        "a = 1  # sast: declasify(reason=typo in the kind)\n"
        "b = 2  # sast: declassify(rules=ZZ999, reason=no such rule)\n"
    )
    _, errors = extract_annotations(src, "m.py")
    assert sorted(e.line for e in errors) == [1, 2]
    assert all(e.rule == "AN001" for e in errors)


def test_mid_comment_mention_is_not_an_annotation():
    src = "x = 1  # see docs about sast: annotations\n"
    annotations, errors = extract_annotations(src, "m.py")
    assert annotations == {} and errors == []


def test_annotation_inside_string_is_ignored():
    src = 's = "# sast: declassify"\n'
    annotations, errors = extract_annotations(src, "m.py")
    assert annotations == {} and errors == []


def test_an001_surfaces_through_collect_findings(tmp_path):
    src = """\
    def f(sk):
        if sk.f[0] > 0:  # sast: declassify
            return 1
        return 0
    """
    findings = findings_for(tmp_path, {"m.py": src})
    an = by_rule(findings, "AN001")
    assert [f.line for f in an] == [line_of(src, "declassify")]
    # the malformed declassify must NOT suppress the underlying finding
    assert len(by_rule(findings, "SF001")) == 1
