"""Tests for the full complex-multiplication (FPC_MUL) leakage model."""

import numpy as np
import pytest

from repro.fpr import emu
from repro.fpr.trace import ADD_STEP_LABELS, MUL_STEP_LABELS, fpr_add_trace
from repro.leakage.fpc import FpcLayout, fpc_step_values, synthesize_fpc_traces
from repro.leakage.device import DeviceModel


def bits(x: float) -> int:
    return int(np.float64(x).view(np.uint64))


class TestFprAddTrace:
    def test_result_matches_emu(self):
        for x, y in ((1.5, 2.25), (-3.7, 1.1), (1e10, -1e-3), (2.0, -1.999)):
            t = fpr_add_trace(bits(x), bits(y))
            assert t.result == emu.fpr_add(bits(x), bits(y))

    def test_labels(self):
        t = fpr_add_trace(bits(1.0), bits(2.0))
        assert t.labels == list(ADD_STEP_LABELS)

    def test_alignment_semantics(self):
        t = fpr_add_trace(bits(8.0), bits(1.0))  # exponents differ by 3
        assert t.value("exp_diff") == 3
        assert t.value("mant_aligned") == (1 << 52) >> 3
        assert t.value("mant_sum") == (1 << 52) + ((1 << 52) >> 3)

    def test_subtraction_path(self):
        t = fpr_add_trace(bits(3.0), bits(-2.0))
        big = (3 << 51)  # significand of 3.0 = 1.5 * 2^1
        assert t.value("mant_big") == big
        assert t.value("mant_sum") == big - (1 << 52)
        assert t.value("add_sign_out") == 0

    def test_zero_short_circuits(self):
        t = fpr_add_trace(bits(0.0), bits(5.0))
        assert t.labels == ["add_result"]

    def test_value_lookup_error(self):
        t = fpr_add_trace(bits(1.0), bits(1.0))
        with pytest.raises(KeyError):
            t.value("bogus")


class TestFpcStepValues:
    def _operands(self, d=300, seed=0):
        rng = np.random.default_rng(seed)
        y_re = (rng.standard_normal(d) * 50 + 120).view(np.uint64)
        y_im = (rng.standard_normal(d) * 50 - 90).view(np.uint64)
        return y_re, y_im

    def test_layout_structure(self):
        layout = FpcLayout.build()
        assert layout.n_samples == 4 * len(MUL_STEP_LABELS) + 2 * len(ADD_STEP_LABELS)
        assert layout.index_of("re_re.p_ll") < layout.index_of("add_re.mant_sum")

    def test_final_adds_match_complex_product(self):
        """d_re/d_im must equal the true complex multiplication."""
        y_re, y_im = self._operands()
        x_re, x_im = 3.75, -1.25
        values, layout = fpc_step_values(bits(x_re), bits(x_im), y_re, y_im)
        d_re = values[:, layout.index_of("add_re.add_result")].view(np.float64)
        d_im = values[:, layout.index_of("add_im.add_result")].view(np.float64)
        y = y_re.view(np.float64) + 1j * y_im.view(np.float64)
        # FPC_MUL is (a*c - b*d) + i(a*d + b*c) with per-op rounding; the
        # final rounded adds must match computing it the same way:
        ref_re = (np.float64(x_re) * y.real) - (np.float64(x_im) * y.imag)
        np.testing.assert_array_equal(d_re, ref_re)
        ref_im = (np.float64(x_re) * y.imag) + (np.float64(x_im) * y.real)
        np.testing.assert_array_equal(d_im, ref_im)

    def test_add_block_matches_scalar_trace(self):
        y_re, y_im = self._operands(d=50, seed=3)
        x_re, x_im = -2.5, 7.125
        values, layout = fpc_step_values(bits(x_re), bits(x_im), y_re, y_im)
        res_col = layout.index_of("re_re.result")
        p0 = values[:, res_col]
        p1 = values[:, layout.index_of("im_im.result")]
        for d in range(50):
            t = fpr_add_trace(int(p0[d]), int(p1[d]) ^ (1 << 63))
            got = [int(values[d, layout.index_of(f"add_re.{lab}")]) for lab in ADD_STEP_LABELS]
            assert got == t.values

    def test_synthesize_shapes(self):
        y_re, y_im = self._operands(d=20)
        traces, values, layout = synthesize_fpc_traces(
            bits(1.5), bits(-0.5), y_re, y_im, device=DeviceModel(samples_per_step=1)
        )
        assert traces.shape == (20, layout.n_samples)
        assert values.shape == (20, layout.n_samples)

    def test_final_adds_mix_both_secrets(self):
        """Changing either secret double changes the final-add leakage."""
        y_re, y_im = self._operands(d=10, seed=5)
        base, layout = fpc_step_values(bits(1.5), bits(-0.5), y_re, y_im)
        var_re, _ = fpc_step_values(bits(2.5), bits(-0.5), y_re, y_im)
        var_im, _ = fpc_step_values(bits(1.5), bits(-0.75), y_re, y_im)
        col = layout.index_of("add_re.mant_sum")
        assert not np.array_equal(base[:, col], var_re[:, col])
        assert not np.array_equal(base[:, col], var_im[:, col])
