"""Fixture helpers for the ``repro.sast`` test suite.

The analyzer is purely static, so fixture packages are written to a
temp directory and *parsed*, never imported — their imports need not
resolve and they can contain deliberately broken patterns without
polluting the test process.
"""

from __future__ import annotations

import os
import textwrap

from repro.sast.cli import collect_findings
from repro.sast.findings import Finding
from repro.sast.project import Project, load_project


def write_package(root: str, files: dict[str, str]) -> str:
    """Write ``relative path -> source`` files (dedented) under root."""
    for rel, source in files.items():
        path = os.path.join(root, rel)
        os.makedirs(os.path.dirname(path) or root, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(textwrap.dedent(source))
    return root


def load_fixture(tmp_path, files: dict[str, str], package: str = "pkg") -> Project:
    pkg_root = os.path.join(str(tmp_path), package)
    os.makedirs(pkg_root, exist_ok=True)
    write_package(pkg_root, files)
    return load_project(pkg_root, package=package)


def findings_for(tmp_path, files: dict[str, str], package: str = "pkg") -> list[Finding]:
    return collect_findings(load_fixture(tmp_path, files, package))


def by_rule(findings: list[Finding], rule: str) -> list[Finding]:
    return [f for f in findings if f.rule == rule]


def line_of(source: str, marker: str) -> int:
    """1-based line number of the first line containing ``marker``."""
    for i, line in enumerate(textwrap.dedent(source).splitlines(), start=1):
        if marker in line:
            return i
    raise AssertionError(f"marker {marker!r} not found in fixture source")
