"""Tests for the NTT over Z_q used by verification and the NTT ablation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.math import ntt, poly

Q = ntt.Q


def rand_poly(n, seed):
    import random

    r = random.Random(seed)
    return [r.randrange(Q) for _ in range(n)]


class TestPrimitiveRoot:
    def test_q_root_generates_group(self):
        g = ntt.find_primitive_root(Q)
        assert pow(g, Q - 1, Q) == 1
        for p in (2, 3):  # q - 1 = 2^12 * 3
            assert pow(g, (Q - 1) // p, Q) != 1

    def test_small_prime(self):
        assert ntt.find_primitive_root(7) in (3, 5)


class TestPsiTable:
    @pytest.mark.parametrize("n", [2, 8, 512, 1024])
    def test_psi_is_2n_th_root(self, n):
        fwd, inv = ntt.psi_table(n)
        psi = fwd[1] if n > 1 else 1
        assert pow(psi, 2 * n, Q) == 1
        assert pow(psi, n, Q) == Q - 1  # psi^n = -1: negacyclic root
        assert psi * inv[1] % Q == 1

    def test_unsupported_n(self):
        with pytest.raises(ValueError):
            ntt.psi_table(3)
        with pytest.raises(ValueError):
            ntt.psi_table(4096)  # no 8192th roots mod 12289


class TestTransform:
    @pytest.mark.parametrize("n", [1, 2, 4, 32, 512, 1024])
    def test_roundtrip(self, n):
        f = rand_poly(n, n)
        assert ntt.intt(ntt.ntt(f), Q) == f

    @pytest.mark.parametrize("n", [2, 8, 64])
    def test_matches_direct_evaluation(self, n):
        """NTT(f)[j] must be an evaluation of f at a root of x^n + 1."""
        f = rand_poly(n, n + 3)
        evals = set(ntt.ntt(f))
        fwd, _ = ntt.psi_table(n)
        direct = set()
        for k in range(2 * n):
            root = pow(fwd[1], 2 * k + 1, Q)
            if pow(root, n, Q) == Q - 1:
                direct.add(sum(c * pow(root, i, Q) for i, c in enumerate(f)) % Q)
        assert evals <= direct

    @pytest.mark.parametrize("n", [4, 32, 256])
    def test_mul_ntt_matches_schoolbook(self, n):
        a, b = rand_poly(n, 1), rand_poly(n, 2)
        assert ntt.mul_ntt(a, b) == poly.mod_q(poly.mul(a, b), Q)

    def test_mul_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ntt.mul_ntt([1, 2], [1, 2, 3, 4])

    @given(st.integers(0, Q - 1), st.integers(0, Q - 1))
    @settings(max_examples=20)
    def test_constant_multiplication(self, a, b):
        out = ntt.mul_ntt([a, 0, 0, 0], [b, 0, 0, 0])
        assert out == [a * b % Q, 0, 0, 0]


class TestTraceInstrumentation:
    def test_trace_output_matches_plain(self):
        f = rand_poly(64, 9)
        out, trace = ntt.ntt_with_trace(f)
        assert out == ntt.ntt(f)

    def test_trace_length(self):
        """n weighted loads + n*log2(n) butterfly outputs."""
        n = 64
        _, trace = ntt.ntt_with_trace(rand_poly(n, 10))
        assert len(trace) == n + n * 6

    def test_trace_values_in_field(self):
        _, trace = ntt.ntt_with_trace(rand_poly(32, 11))
        assert all(0 <= v < Q for v in trace)
