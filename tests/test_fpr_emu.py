"""Bit-exactness tests for the fpr softfloat emulation.

The reference semantics is the host's IEEE-754 double arithmetic
(round-to-nearest-even): every operation must be bit-identical on normal
inputs/outputs; subnormal results flush to zero (FALCON's fpr.c
behaviour); overflow saturates to the infinity pattern.
"""

import math
import struct

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.fpr import emu


def normal_double(min_exp=-900, max_exp=900):
    """Strategy for finite normal doubles with bounded exponent."""

    def build(sign, exp, mant):
        return struct.unpack(
            "<d", struct.pack("<Q", (sign << 63) | ((exp + 1023) << 52) | mant)
        )[0]

    return st.builds(
        build,
        st.integers(0, 1),
        st.integers(min_exp, max_exp),
        st.integers(0, (1 << 52) - 1),
    )


def bits(x: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", x))[0]


def is_normal_or_zero(x: float) -> bool:
    if x == 0.0:
        return True
    e = (bits(x) >> 52) & 0x7FF
    return 0 < e < 0x7FF


class TestPackUnpack:
    def test_roundtrip_known_values(self):
        for v in (0.0, 1.0, -1.0, 0.5, 3.141592653589793, -1e300, 1e-300):
            assert emu.fpr_to_float(emu.fpr_from_float(v)) == v

    def test_decompose_compose(self):
        x = bits(-2.5)
        s, e, m = emu.decompose(x)
        assert (s, e) == (1, 1024)
        assert emu.compose(s, e, m) == x

    def test_compose_validation(self):
        with pytest.raises(ValueError):
            emu.compose(2, 100, 0)
        with pytest.raises(ValueError):
            emu.compose(0, 2048, 0)
        with pytest.raises(ValueError):
            emu.compose(0, 100, 1 << 52)

    def test_is_zero(self):
        assert emu.is_zero(bits(0.0))
        assert emu.is_zero(bits(-0.0))
        assert not emu.is_zero(bits(1e-308))


class TestConversions:
    @given(st.integers(-(2**53) + 1, 2**53 - 1))
    def test_fpr_of_exact(self, i):
        assert emu.fpr_to_float(emu.fpr_of(i)) == float(i)

    def test_fpr_of_too_large(self):
        with pytest.raises(ValueError):
            emu.fpr_of(1 << 53)

    def test_fpr_of_zero(self):
        assert emu.fpr_of(0) == 0


class TestArithmeticBitExact:
    @given(normal_double(), normal_double())
    @settings(max_examples=500)
    def test_mul(self, x, y):
        ref = x * y
        assume(is_normal_or_zero(ref) and math.isfinite(ref) and ref != 0.0)
        assert emu.fpr_mul(bits(x), bits(y)) == bits(ref)

    @given(normal_double(-60, 60), normal_double(-60, 60))
    @settings(max_examples=500)
    def test_add(self, x, y):
        ref = x + y
        assume(is_normal_or_zero(ref))
        assert emu.fpr_add(bits(x), bits(y)) == bits(ref)

    @given(normal_double(-60, 60), normal_double(-60, 60))
    @settings(max_examples=300)
    def test_sub(self, x, y):
        ref = x - y
        assume(is_normal_or_zero(ref))
        assert emu.fpr_sub(bits(x), bits(y)) == bits(ref)

    @given(normal_double(-200, 200), normal_double(-200, 200))
    @settings(max_examples=500)
    def test_div(self, x, y):
        ref = x / y
        assume(is_normal_or_zero(ref) and ref != 0.0)
        assert emu.fpr_div(bits(x), bits(y)) == bits(ref)

    @given(normal_double())
    @settings(max_examples=500)
    def test_sqrt(self, x):
        assert emu.fpr_sqrt(bits(abs(x))) == bits(math.sqrt(abs(x)))

    def test_mul_by_zero_sign(self):
        assert emu.fpr_mul(bits(0.0), bits(-3.0)) == bits(-0.0)
        assert emu.fpr_mul(bits(-0.0), bits(-3.0)) == bits(0.0)

    def test_add_zeros(self):
        assert emu.fpr_add(bits(0.0), bits(-0.0)) == bits(0.0)
        assert emu.fpr_add(bits(-0.0), bits(-0.0)) == bits(-0.0)

    def test_exact_cancellation_is_positive_zero(self):
        assert emu.fpr_add(bits(1.5), bits(-1.5)) == bits(0.0)

    def test_underflow_flushes_to_zero(self):
        tiny = 2.0**-540
        out = emu.fpr_mul(bits(tiny), bits(tiny))
        assert emu.is_zero(out)

    def test_overflow_saturates_to_inf(self):
        big = 2.0**1000
        out = emu.fpr_mul(bits(big), bits(big))
        assert out == bits(math.inf)

    def test_div_by_zero_rejected(self):
        with pytest.raises(ZeroDivisionError):
            emu.fpr_div(bits(1.0), bits(0.0))

    def test_sqrt_negative_rejected(self):
        with pytest.raises(ValueError):
            emu.fpr_sqrt(bits(-1.0))

    def test_subnormal_input_rejected(self):
        with pytest.raises(ValueError):
            emu.fpr_mul(bits(5e-324), bits(1.0))


class TestRounding:
    def test_round_to_nearest_even_tie(self):
        # 2^52 + 0.5 ties -> rounds to even (2^52)
        x = bits(float(2**52))
        half = bits(0.5)
        assert emu.fpr_add(x, half) == x
        # (2^52 + 1) + 0.5 ties -> rounds up to even (2^52 + 2)
        x1 = bits(float(2**52 + 1))
        assert emu.fpr_add(x1, half) == bits(float(2**52 + 2))

    @given(normal_double(-40, 40))
    @settings(max_examples=300)
    def test_rint_matches_host(self, x):
        assume(abs(x) < 2**52)
        # Python's round() is round-half-even, same as fpr_rint.
        assert emu.fpr_rint(bits(x)) == round(x)

    @given(normal_double(-40, 40))
    @settings(max_examples=300)
    def test_floor_trunc_match_host(self, x):
        assume(abs(x) < 2**52)
        assert emu.fpr_floor(bits(x)) == math.floor(x)
        assert emu.fpr_trunc(bits(x)) == math.trunc(x)

    def test_rint_far_below_one(self):
        assert emu.fpr_rint(bits(1e-300)) == 0
        assert emu.fpr_floor(bits(-1e-300)) == -1
        assert emu.fpr_trunc(bits(-1e-300)) == 0


class TestHelpers:
    @given(normal_double(-100, 100))
    @settings(max_examples=200)
    def test_neg_abs_half_double(self, x):
        b = bits(x)
        assert emu.fpr_to_float(emu.fpr_neg(b)) == -x
        assert emu.fpr_to_float(emu.fpr_abs(b)) == abs(x)
        assert emu.fpr_to_float(emu.fpr_half(b)) == x / 2
        assert emu.fpr_to_float(emu.fpr_double(b)) == x * 2

    @given(normal_double(-50, 50), normal_double(-50, 50))
    @settings(max_examples=200)
    def test_lt_matches_host(self, x, y):
        assert emu.fpr_lt(bits(x), bits(y)) == (x < y)


class TestFprLt:
    """fpr_lt is an exact integer bit-pattern comparison (no host float
    round-trip): signed order for same-sign patterns (reversed when both
    are negative), sign decides on a mismatch, and the two zeros compare
    equal in both directions."""

    def test_zero_patterns(self):
        pos0, neg0 = bits(0.0), bits(-0.0)
        assert not emu.fpr_lt(pos0, neg0)
        assert not emu.fpr_lt(neg0, pos0)
        assert not emu.fpr_lt(pos0, pos0)
        assert not emu.fpr_lt(neg0, neg0)
        assert emu.fpr_lt(neg0, bits(1.0))
        assert emu.fpr_lt(bits(-1.0), pos0)
        assert not emu.fpr_lt(pos0, bits(-1e-300))
        assert emu.fpr_lt(pos0, bits(1e-300))

    def test_saturated_infinity_patterns(self):
        """Overflowed fpr_mul saturates to the infinity pattern; the
        comparison must keep ordering it against every finite value."""
        huge = bits(1.5e308)
        pos_inf = emu.fpr_mul(huge, huge)          # saturates to +inf
        neg_inf = emu.fpr_mul(huge, emu.fpr_neg(huge))
        assert pos_inf == bits(float("inf"))
        assert neg_inf == bits(float("-inf"))
        assert emu.fpr_lt(huge, pos_inf)
        assert not emu.fpr_lt(pos_inf, huge)
        assert emu.fpr_lt(neg_inf, emu.fpr_neg(huge))
        assert emu.fpr_lt(neg_inf, pos_inf)
        assert not emu.fpr_lt(pos_inf, pos_inf)
        assert not emu.fpr_lt(neg_inf, neg_inf)
        assert emu.fpr_lt(neg_inf, bits(0.0))
        assert emu.fpr_lt(bits(-0.0), pos_inf)

    def test_both_negative_order_reversed(self):
        assert emu.fpr_lt(bits(-2.0), bits(-1.0))
        assert not emu.fpr_lt(bits(-1.0), bits(-2.0))
        assert not emu.fpr_lt(bits(-1.0), bits(-1.0))
        assert emu.fpr_lt(bits(-1e300), bits(-1e-300))

    @given(
        st.one_of(normal_double(-900, 900), st.just(0.0), st.just(-0.0)),
        st.one_of(normal_double(-900, 900), st.just(0.0), st.just(-0.0)),
    )
    @settings(max_examples=300)
    def test_lt_matches_host_with_zeros(self, x, y):
        assert emu.fpr_lt(bits(x), bits(y)) == (x < y)
