"""Integration tests: signing, verification, ffSampling statistics."""

import math

import numpy as np
import pytest

from repro.falcon import FalconParams, Signature, keygen, sign, verify
from repro.falcon.ffsampling import ffsampling
from repro.falcon.hash_to_point import hash_to_point
from repro.falcon.sign import sign_target
from repro.falcon.verify import recover_s1
from repro.falcon.compress import decompress
from repro.math import fft, ntt, poly


@pytest.fixture(scope="module")
def kp():
    return keygen(FalconParams.get(32), seed=b"sv32")


class TestSignVerify:
    def test_roundtrip(self, kp):
        sk, pk = kp
        sig = sign(sk, b"message", seed=1)
        assert verify(pk, b"message", sig)

    def test_wrong_message_rejected(self, kp):
        sk, pk = kp
        sig = sign(sk, b"message", seed=1)
        assert not verify(pk, b"messagE", sig)

    def test_wrong_key_rejected(self, kp):
        sk, _ = kp
        _, other_pk = keygen(FalconParams.get(32), seed=b"other")
        sig = sign(sk, b"message", seed=1)
        assert not verify(other_pk, b"message", sig)

    def test_tampered_signature_rejected(self, kp):
        sk, pk = kp
        sig = sign(sk, b"m", seed=2)
        flipped = bytes([sig.s2_compressed[0] ^ 0x40]) + sig.s2_compressed[1:]
        assert not verify(pk, b"m", Signature(salt=sig.salt, s2_compressed=flipped))

    def test_wrong_salt_length_rejected(self, kp):
        sk, pk = kp
        sig = sign(sk, b"m", seed=3)
        assert not verify(pk, b"m", Signature(salt=sig.salt[:-1], s2_compressed=sig.s2_compressed))

    def test_signature_randomized_without_seed(self, kp):
        sk, pk = kp
        s1 = sign(sk, b"m")
        s2 = sign(sk, b"m")
        assert s1.salt != s2.salt
        assert verify(pk, b"m", s1) and verify(pk, b"m", s2)

    def test_encoded_length(self, kp):
        sk, _ = kp
        sig = sign(sk, b"m", seed=4)
        assert len(sig.encoded()) == sk.params.sig_bytelen

    @pytest.mark.parametrize("n", [8, 16, 64, 128])
    def test_all_ring_sizes(self, n):
        sk, pk = keygen(FalconParams.get(n), seed=f"ring{n}".encode())
        sig = sign(sk, b"multi-ring", seed=9)
        assert verify(pk, b"multi-ring", sig)

    def test_norm_within_bound(self, kp):
        """Recompute ||(s1, s2)||^2 from the wire signature."""
        sk, pk = kp
        params = sk.params
        sig = sign(sk, b"norm-check", seed=6)
        s2 = decompress(sig.s2_compressed, params.compressed_sig_bits, params.n)
        c = hash_to_point(sig.salt + b"norm-check", params.q, params.n)
        s1 = recover_s1(pk, c, s2)
        norm = sum(v * v for v in s1) + sum(v * v for v in s2)
        assert 0 < norm <= params.sig_bound


class TestLatticeIdentity:
    def test_signature_solves_hash_equation(self, kp):
        """s1 + s2 h = c (mod q) — the GPV identity the forgery relies on."""
        sk, pk = kp
        params = sk.params
        sig = sign(sk, b"identity", seed=7)
        s2 = decompress(sig.s2_compressed, params.compressed_sig_bits, params.n)
        c = hash_to_point(sig.salt + b"identity", params.q, params.n)
        s1 = recover_s1(pk, c, s2)
        lhs = poly.mod_q(poly.add(s1, ntt.mul_ntt(s2, pk.h, params.q)), params.q)
        assert lhs == c

    def test_sign_target_identity(self, kp):
        """t B = (c, 0): the target construction of Algorithm 10 line 3."""
        sk, _ = kp
        n, q = sk.params.n, sk.params.q
        c = hash_to_point(b"target-check", q, n)
        t0, t1 = sign_target(sk, c)
        b00, b01, b10, b11 = sk.b_hat
        first = fft.ifft(t0 * b00 + t1 * b10)
        second = fft.ifft(t0 * b01 + t1 * b11)
        np.testing.assert_allclose(first, np.array(c, dtype=float), atol=1e-4)
        np.testing.assert_allclose(second, 0.0, atol=1e-4)


class TestFfSamplingStatistics:
    def test_sampled_point_is_integral(self, kp):
        """z returned by ffSampling must invert to integer vectors."""
        sk, _ = kp
        from repro.falcon.samplerz import samplerz
        from repro.utils.rng import ChaCha20Prng

        rng = ChaCha20Prng(b"ffs")
        c = hash_to_point(b"ffs", sk.params.q, sk.params.n)
        t0, t1 = sign_target(sk, c)
        z0, z1 = ffsampling(
            t0, t1, sk.tree, lambda mu, s: samplerz(mu, s, sk.params.sigmin, rng)
        )
        for z in (z0, z1):
            coeffs = fft.ifft(z)
            np.testing.assert_allclose(coeffs, np.round(coeffs), atol=1e-6)

    def test_signature_norm_concentration(self, kp):
        """E||s||^2 ~ 2 n sigma^2 for the GPV sampler."""
        sk, pk = kp
        params = sk.params
        norms = []
        for i in range(12):
            sig = sign(sk, f"conc{i}".encode(), seed=i)
            s2 = decompress(sig.s2_compressed, params.compressed_sig_bits, params.n)
            c = hash_to_point(sig.salt + f"conc{i}".encode(), params.q, params.n)
            s1 = recover_s1(pk, c, s2)
            norms.append(sum(v * v for v in s1) + sum(v * v for v in s2))
        mean = sum(norms) / len(norms)
        expected = 2 * params.n * params.sigma**2
        assert 0.5 * expected < mean < 1.5 * expected
