"""Resumable sessions: atomic checkpoints and bit-identical resume."""

import dataclasses
import os

import pytest

from repro.attack.config import AttackConfig
from repro.attack.key_recovery import recover_coefficients
from repro.attack.pipeline import full_attack
from repro.attack.session import AttackSession, SessionError
from repro.falcon.keygen import keygen
from repro.falcon.params import FalconParams
from repro.leakage.capture import CaptureCampaign
from repro.leakage.device import DeviceModel

N_TRACES = 450
SEED = 61


@pytest.fixture(scope="module")
def victim():
    return keygen(FalconParams.get(8), seed=b"session-tests")


@pytest.fixture(scope="module")
def device():
    return DeviceModel(noise_sigma=2.0, seed=17)


@pytest.fixture(scope="module")
def reference(victim, device):
    sk, pk = victim
    return full_attack(sk, pk, n_traces=N_TRACES, device=device, seed=SEED)


def _reports_identical(a, b):
    assert a.succeeded == b.succeeded
    assert a.key_recovery.f == b.key_recovery.f
    assert [c.pattern for c in a.key_recovery.coefficients] == [
        c.pattern for c in b.key_recovery.coefficients
    ]
    assert [r.n_traces_kept for r in a.records] == [r.n_traces_kept for r in b.records]
    for ra, rb in zip(a.records, b.records):
        assert ra.sign_margin == rb.sign_margin
        assert ra.exponent_margin == rb.exponent_margin
        assert ra.mantissa_margin == rb.mantissa_margin


class TestResume:
    def test_interrupted_run_resumes_bit_identically(
        self, victim, device, reference, tmp_path
    ):
        sk, pk = victim
        sess = str(tmp_path / "sess")
        attacked = [0]

        def interrupt_after(k):
            def cb(ev):
                if ev.stage == "coefficient" and ev.message != "restored from checkpoint":
                    attacked[0] += 1
                    if attacked[0] >= k:
                        raise KeyboardInterrupt
            return cb

        with pytest.raises(KeyboardInterrupt):
            full_attack(
                sk, pk, n_traces=N_TRACES, device=device, seed=SEED,
                session=sess, progress_callback=interrupt_after(3),
            )
        checkpoints = [f for f in os.listdir(sess) if f.startswith("coeff_")]
        assert len(checkpoints) == 3

        resumed = full_attack(
            sk, pk, n_traces=N_TRACES, device=device, seed=SEED, session=sess
        )
        _reports_identical(resumed, reference)

    def test_resume_replays_without_recomputation(self, victim, device, tmp_path):
        sk, pk = victim
        sess = str(tmp_path / "sess")
        full_attack(sk, pk, n_traces=N_TRACES, device=device, seed=SEED, session=sess)
        restored = [0]

        def count(ev):
            if ev.message == "restored from checkpoint":
                restored[0] += 1

        full_attack(
            sk, pk, n_traces=N_TRACES, device=device, seed=SEED,
            session=sess, progress_callback=count,
        )
        assert restored[0] == sk.params.n

    def test_fingerprint_guard_rejects_other_campaign(self, victim, device, tmp_path):
        sk, pk = victim
        sess = str(tmp_path / "sess")
        campaign = CaptureCampaign(
            sk=sk, device=device, n_traces=N_TRACES, seed=SEED
        )
        cfg = AttackConfig()
        session = AttackSession(sess).bind(campaign, cfg)
        session.record(0, "sentinel-recovery", "sentinel-record")
        # different capture seed
        other = CaptureCampaign(sk=sk, device=device, n_traces=N_TRACES, seed=SEED + 1)
        with pytest.raises(SessionError):
            AttackSession(sess).bind(other, cfg)
        # different attack config (distinguisher counts too)
        with pytest.raises(SessionError):
            AttackSession(sess).bind(
                campaign, dataclasses.replace(cfg, distinguisher="template")
            )
        # the original pairing still binds fine
        AttackSession(sess).bind(campaign, cfg)

    def test_truncated_checkpoint_is_reattacked(self, victim, device, tmp_path):
        sk, _ = victim
        campaign = CaptureCampaign(sk=sk, device=device, n_traces=N_TRACES, seed=SEED)
        cfg = AttackConfig()
        sess = str(tmp_path / "sess")
        session = AttackSession(sess).bind(campaign, cfg)
        (tmp_path / "sess" / "coeff_00000.pkl").write_bytes(b"torn write")
        assert session.completed() == {}
        recs, records = recover_coefficients(campaign, cfg, session=session)
        assert all(r is not None for r in recs)
        # the re-attacked checkpoint is now valid
        assert 0 in AttackSession(sess).completed()

    def test_parallel_resume_matches_serial(self, victim, device, reference, tmp_path):
        sk, pk = victim
        sess = str(tmp_path / "sess")

        def interrupt_second(ev):
            if ev.stage == "coefficient" and ev.completed >= 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            full_attack(
                sk, pk, n_traces=N_TRACES, device=device, seed=SEED,
                session=sess, n_workers=2, progress_callback=interrupt_second,
            )
        assert any(f.startswith("coeff_") for f in os.listdir(sess))
        resumed = full_attack(
            sk, pk, n_traces=N_TRACES, device=device, seed=SEED,
            session=sess, n_workers=2,
        )
        _reports_identical(resumed, reference)
