"""Tests for NTRUSolve: the key-generation equation f G - g F = q."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.falcon.ntru_solve import NtruSolveError, ntru_solve, reduce_fg, xgcd
from repro.math import gaussian, poly
from repro.utils.rng import ChaCha20Prng

Q = 12289


class TestXgcd:
    @given(st.integers(-10**9, 10**9), st.integers(-10**9, 10**9))
    def test_bezout_identity(self, a, b):
        d, u, v = xgcd(a, b)
        assert u * a + v * b == d
        if a or b:
            assert d > 0
            assert a % d == 0 and b % d == 0

    def test_gcd_zero(self):
        assert xgcd(0, 0)[0] == 0

    def test_coprime(self):
        d, u, v = xgcd(17, 31)
        assert d == 1
        assert (u * 17) % 31 == 1 % 31


def sample_fg(n, seed):
    rng = ChaCha20Prng(seed)
    sigma = 1.17 * (Q / (2 * n)) ** 0.5
    return (
        gaussian.sample_poly_dgauss(n, sigma, rng),
        gaussian.sample_poly_dgauss(n, sigma, rng),
    )


class TestNtruSolve:
    def test_base_case(self):
        big_f, big_g = ntru_solve([3], [5], Q)
        assert 3 * big_g[0] - 5 * big_f[0] == Q

    def test_base_case_gcd_failure(self):
        with pytest.raises(NtruSolveError):
            ntru_solve([4], [6], Q)

    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32, 64])
    def test_equation_holds(self, n):
        for attempt in range(10):
            f, g = sample_fg(n, f"ntru-{n}-{attempt}".encode())
            try:
                big_f, big_g = ntru_solve(f, g, Q)
            except NtruSolveError:
                continue
            lhs = poly.sub(poly.mul(f, big_g), poly.mul(g, big_f))
            assert lhs == poly.constant(Q, n)
            return
        pytest.fail(f"no solvable (f, g) found in 10 attempts for n={n}")

    @pytest.mark.parametrize("n", [8, 32])
    def test_solution_is_reduced(self, n):
        """Babai reduction keeps F, G within a small factor of f, g scale."""
        for attempt in range(10):
            f, g = sample_fg(n, f"red-{n}-{attempt}".encode())
            try:
                big_f, big_g = ntru_solve(f, g, Q)
            except NtruSolveError:
                continue
            scale = max(max(map(abs, f)), max(map(abs, g)))
            big_scale = max(max(map(abs, big_f)), max(map(abs, big_g)))
            # the reduced solution is O(q / ||(f,g)||): generous factor
            assert big_scale < 500 * max(scale, 1)
            return
        pytest.fail("no solvable (f, g) found")

    def test_degree_mismatch(self):
        with pytest.raises(ValueError):
            ntru_solve([1, 2], [1, 2, 3, 4], Q)


class TestReduce:
    def test_reduce_preserves_equation(self):
        n = 8
        f, g = sample_fg(n, b"reduce-eq")
        try:
            big_f, big_g = ntru_solve(f, g, Q)
        except NtruSolveError:
            pytest.skip("unsolvable sample")
        # blow (F, G) up by a multiple of (f, g) and reduce back
        k = [12345] + [0] * (n - 1)
        big_f2 = poly.add(big_f, poly.mul(k, f))
        big_g2 = poly.add(big_g, poly.mul(k, g))
        red_f, red_g = reduce_fg(f, g, big_f2, big_g2)
        lhs = poly.sub(poly.mul(f, red_g), poly.mul(g, red_f))
        assert lhs == poly.constant(Q, n)
        assert max(map(abs, red_f)) <= max(map(abs, big_f2))
