"""Tests for the spec wire-format key codec."""

import pytest

from repro.falcon import FalconParams, keygen, sign, verify
from repro.falcon.codec import (
    CodecError,
    decode_public_key,
    decode_secret_key,
    encode_public_key,
    encode_secret_key,
)


@pytest.fixture(scope="module")
def kp():
    return keygen(FalconParams.get(64), seed=b"codec")


class TestPublicKeyCodec:
    def test_roundtrip(self, kp):
        _, pk = kp
        pk2 = decode_public_key(encode_public_key(pk))
        assert pk2.h == pk.h
        assert pk2.params.n == pk.params.n

    def test_encoded_length(self, kp):
        _, pk = kp
        n = pk.params.n
        assert len(encode_public_key(pk)) == 1 + (14 * n + 7) // 8

    def test_falcon512_length_matches_spec(self):
        """The spec's FALCON-512 public key is 897 bytes."""
        sk, pk = keygen(FalconParams.get(512), seed=b"codec-512")
        assert len(encode_public_key(pk)) == 897
        # and the secret key is 1281 bytes (6-bit f/g, 8-bit F)
        assert len(encode_secret_key(sk)) == 1281

    def test_header_validation(self, kp):
        _, pk = kp
        blob = bytearray(encode_public_key(pk))
        blob[0] = 0x70
        with pytest.raises(CodecError):
            decode_public_key(bytes(blob))

    def test_truncation_rejected(self, kp):
        _, pk = kp
        blob = encode_public_key(pk)
        with pytest.raises(CodecError):
            decode_public_key(blob[:-1])

    def test_empty_rejected(self):
        with pytest.raises(CodecError):
            decode_public_key(b"")

    def test_out_of_range_coefficient_rejected(self, kp):
        _, pk = kp
        blob = bytearray(encode_public_key(pk))
        blob[1] = 0xFF
        blob[2] = 0xFF  # first 14-bit field becomes > q
        with pytest.raises(CodecError):
            decode_public_key(bytes(blob))


class TestSecretKeyCodec:
    def test_roundtrip_recomputes_g(self, kp):
        sk, _ = kp
        sk2 = decode_secret_key(encode_secret_key(sk))
        assert sk2.f == sk.f
        assert sk2.g == sk.g
        assert sk2.big_f == sk.big_f
        assert sk2.big_g == sk.big_g  # recomputed from the NTRU equation
        assert sk2.h == sk.h

    def test_decoded_key_signs(self, kp):
        sk, pk = kp
        sk2 = decode_secret_key(encode_secret_key(sk))
        sig = sign(sk2, b"decoded key", seed=4)
        assert verify(pk, b"decoded key", sig)

    def test_header_validation(self, kp):
        sk, _ = kp
        blob = bytearray(encode_secret_key(sk))
        blob[0] = 0x00
        with pytest.raises(CodecError):
            decode_secret_key(bytes(blob))

    def test_corruption_detected_by_ntru_check(self, kp):
        sk, _ = kp
        blob = bytearray(encode_secret_key(sk))
        blob[5] ^= 0x10  # corrupt an f coefficient
        with pytest.raises(CodecError):
            decode_secret_key(bytes(blob))

    def test_wrong_length_rejected(self, kp):
        sk, _ = kp
        blob = encode_secret_key(sk)
        with pytest.raises(CodecError):
            decode_secret_key(blob + b"\x00")
