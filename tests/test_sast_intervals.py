"""Interval abstract-interpretation precision pass.

Two layers: unit tests for the value-range transfer functions, and
end-to-end fixtures pinning which SF002/SF003 false positives the
interval pass suppresses — and, just as important, which true leaks
it must *not* suppress.
"""

from __future__ import annotations

from tests.sast_util import by_rule, findings_for, line_of

from repro.sast.intervals import (
    TOP,
    Interval,
    iv_and,
    iv_bit_length,
    iv_lshift,
    iv_mod,
    iv_mul,
    iv_or,
    iv_rshift,
)


# -- domain unit tests -----------------------------------------------------


def test_interval_basic_properties():
    iv = Interval(0, 63)
    assert iv.finite and iv.nonneg and iv.width() == 64 and iv.contains_zero()
    assert Interval(5, 5).const == 5
    assert not TOP.finite and TOP.width() is None


def test_interval_join_meet():
    assert Interval(0, 3).join(Interval(10, 12)) == Interval(0, 12)
    assert Interval(0, 10).meet(Interval(5, 20)) == Interval(5, 10)
    assert Interval(None, 5).join(Interval(2, None)) == TOP


def test_shift_transfer_functions():
    assert iv_lshift(Interval(1, 1), Interval(0, 52)) == Interval(1, 1 << 52)
    assert iv_rshift(Interval(0, 255), Interval(0, 4)) == Interval(0, 255)
    # huge shift amounts widen to TOP instead of materializing bignums
    assert iv_lshift(Interval(1, 1), Interval(0, 10**6)) == TOP


def test_bitwise_transfer_functions():
    # x & mask with mask >= 0 is bounded by the mask
    assert iv_and(TOP, Interval(0xFFF, 0xFFF)) == Interval(0, 0xFFF)
    # _IMPLICIT | m for m in [0, 2^52) stays within the 53-bit mantissa
    implicit = 1 << 52
    got = iv_or(Interval(implicit, implicit), Interval(0, implicit - 1))
    assert got == Interval(implicit, (1 << 53) - 1)


def test_mod_and_bit_length():
    # result of `x % q` depends only on the divisor's sign
    assert iv_mod(TOP, Interval(12289, 12289)) == Interval(0, 12288)
    assert iv_bit_length(Interval(0, 255)) == Interval(0, 8)
    assert iv_mul(Interval(-2, 3), Interval(-5, 7)) == Interval(-15, 21)


# -- end-to-end suppression fixtures ---------------------------------------


def test_bounded_shift_and_subscript_suppressed(tmp_path):
    """Shift amounts and indices proven compile-time bounded no longer
    raise SF003/SF002; unbounded ones still do."""
    src = """\
    MANT_BITS = 52
    TABLE = [0] * 64

    def ops(sk):
        s = sk.f[0]
        e = min(s & 63, 52)
        a = s << MANT_BITS        # bounded constant amount: suppressed
        b = s >> e                # amount in [0, 52]: suppressed
        c = TABLE[s & 63]         # index in [0, 63]: suppressed
        d = 1 << s                # unbounded secret amount: SF003
        return a, b, c, d
    """
    findings = findings_for(tmp_path, {"shifts.py": src})
    sf3 = [f.line for f in by_rule(findings, "SF003")]
    assert sf3 == [line_of(src, "1 << s")]
    assert by_rule(findings, "SF002") == []


def test_division_pow2_and_pow_const_suppressed(tmp_path):
    src = """\
    def ops(sk):
        s = sk.f[0]
        a = s % 4096              # power-of-two divisor: suppressed
        b = s // 2                # power-of-two divisor: suppressed
        c = (s & 255) % 3         # bounded dividend, const divisor: suppressed
        d = s ** 2                # small constant exponent: suppressed
        e = s % sk.g[0]           # secret divisor: SF003
        return a, b, c, d, e
    """
    findings = findings_for(tmp_path, {"divs.py": src})
    sf3 = [f.line for f in by_rule(findings, "SF003")]
    assert sf3 == [line_of(src, "s % sk.g[0]")]


def test_guard_refinement_bounds_branch_values(tmp_path):
    """Range information learned from an `if` guard suppresses findings in
    the guarded branch only."""
    src = """\
    def ops(sk):
        d = sk.f[0].bit_length() - 53
        if d < 0:
            x = sk.f[1] << -d     # -d in [1, 53] via refinement: suppressed
        else:
            x = sk.f[1] >> d      # d only lower-bounded: SF003
        return x
    """
    findings = findings_for(tmp_path, {"guard.py": src})
    sf3 = sorted(f.line for f in by_rule(findings, "SF003"))
    # bit_length on an unbounded secret is itself variable-time (true leak)
    assert sf3 == [line_of(src, "bit_length"), line_of(src, "sk.f[1] >> d")]


def test_loop_counter_subscript_suppressed(tmp_path):
    src = """\
    TABLE = [0] * 64

    def ops(sk):
        acc = 0
        for i in range(64):
            acc += TABLE[i] * sk.f[0]
        return acc
    """
    findings = findings_for(tmp_path, {"loop.py": src})
    assert by_rule(findings, "SF002") == []


def test_havoc_keeps_loop_reassigned_names_unbounded(tmp_path):
    """A bound learned before a loop must not persist once the loop body
    reassigns the name (soundness: no false suppression)."""
    src = """\
    def ops(sk, m):
        e = sk.f[0] & 7
        for _ in range(4):
            x = 1 << e            # e reassigned below; stale [0,7] bound: SF003
            e = e + m
        return x
    """
    findings = findings_for(tmp_path, {"havoc.py": src})
    sf3 = [f.line for f in by_rule(findings, "SF003")]
    assert sf3 == [line_of(src, "1 << e")]


def test_public_attrs_are_not_secret_carriers(tmp_path):
    """Field sensitivity: reading sk.n / sk.q / sk.h / sk.params yields
    public values even though `sk` is a recognized carrier."""
    src = """\
    def ops(sk):
        if sk.n > 256:
            return sk.h[0] % sk.q
        return sk.params
    """
    findings = findings_for(tmp_path, {"pub.py": src})
    assert by_rule(findings, "SF001") == []
    assert by_rule(findings, "SF003") == []
