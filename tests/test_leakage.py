"""Tests for the leakage models, device, synthesizer and capture layers."""

import numpy as np
import pytest

from repro.falcon import FalconParams, keygen
from repro.fpr.trace import MUL_STEP_LABELS
from repro.leakage import (
    CaptureCampaign,
    DeviceModel,
    HammingDistanceModel,
    HammingWeightModel,
    TraceSet,
    WeightedBitModel,
    capture_coefficient,
    synthesize_mul_traces,
    trace_layout,
)
from repro.leakage.capture import doubles_to_fft, fft_to_doubles
from repro.leakage.synth import mul_step_values
from repro.leakage.traceset import Segment


@pytest.fixture(scope="module")
def kp():
    return keygen(FalconParams.get(16), seed=b"leak")


class TestModels:
    def test_hw_model(self):
        vals = np.array([0, 1, 3, 0xFF], dtype=np.uint64)
        np.testing.assert_array_equal(HammingWeightModel().signal(vals), [0, 1, 2, 8])

    def test_hd_model_defaults_to_hw(self):
        vals = np.array([7, 8], dtype=np.uint64)
        np.testing.assert_array_equal(HammingDistanceModel().signal(vals), [3, 1])

    def test_hd_model_with_previous(self):
        vals = np.array([0b1100], dtype=np.uint64)
        prev = np.array([0b1010], dtype=np.uint64)
        assert HammingDistanceModel().signal(vals, prev)[0] == 2

    def test_weighted_bits_equal_weights_is_hw(self):
        vals = np.array([0b1011, 0xFFFF], dtype=np.uint64)
        wb = WeightedBitModel()
        np.testing.assert_allclose(wb.signal(vals), HammingWeightModel().signal(vals))

    def test_weighted_bits_nonuniform(self):
        weights = tuple([2.0] + [0.0] * 63)
        wb = WeightedBitModel(weights=weights)
        np.testing.assert_allclose(wb.signal(np.array([1, 2, 3], dtype=np.uint64)), [2, 0, 2])


class TestDeviceModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceModel(samples_per_step=0)
        with pytest.raises(ValueError):
            DeviceModel(noise_sigma=-1)
        with pytest.raises(ValueError):
            DeviceModel(jitter=-1)

    def test_emit_shape(self):
        dev = DeviceModel(samples_per_step=3, noise_sigma=0.0)
        vals = np.ones((5, 4), dtype=np.uint64)
        out = dev.emit(vals, dev.rng())
        assert out.shape == (5, 12)

    def test_noise_free_signal_is_hw(self):
        dev = DeviceModel(noise_sigma=0.0, gain=2.0, offset=1.0)
        vals = np.array([[0b111]], dtype=np.uint64)
        out = dev.emit(vals, dev.rng())
        assert out[0, 0] == pytest.approx(2.0 * 3 + 1.0)

    def test_noise_statistics(self):
        dev = DeviceModel(noise_sigma=5.0, offset=0.0, gain=1.0)
        vals = np.zeros((4000, 1), dtype=np.uint64)
        out = dev.emit(vals, dev.rng())
        assert abs(float(out.mean())) < 0.5
        assert float(out.std()) == pytest.approx(5.0, rel=0.1)

    def test_deterministic_given_seed(self):
        dev = DeviceModel(seed=77)
        vals = np.arange(12, dtype=np.uint64).reshape(3, 4)
        a = dev.emit(vals, dev.rng())
        b = dev.emit(vals, dev.rng())
        np.testing.assert_array_equal(a, b)

    def test_jitter_shifts_traces(self):
        dev = DeviceModel(noise_sigma=0.0, jitter=2, seed=1)
        vals = np.zeros((20, 10), dtype=np.uint64)
        vals[:, 5] = 0xFFFF
        out = dev.emit(vals, dev.rng())
        peaks = out.argmax(axis=1)
        assert peaks.min() >= 3 and peaks.max() <= 7 and len(set(peaks)) > 1

    def test_jitter_gather_matches_roll_loop(self):
        """The vectorized jitter gather must be bit-identical to the
        obvious per-trace np.roll loop it replaced."""
        dev = DeviceModel(noise_sigma=3.0, jitter=4, samples_per_step=2, seed=99)
        vals = np.random.default_rng(2).integers(
            0, 1 << 56, size=(50, 9), dtype=np.uint64
        )
        fast = dev.emit(vals, dev.rng())

        # reference: same rng consumption order, explicit roll loop
        rng = dev.rng()
        signal = dev.model.signal(vals) * dev.gain + dev.offset
        expanded = np.repeat(signal, dev.samples_per_step, axis=1)
        noise = rng.normal(0.0, dev.noise_sigma, size=expanded.shape)
        slow = (expanded + noise).astype(np.float32)
        shifts = rng.integers(-dev.jitter, dev.jitter + 1, size=slow.shape[0])
        for i, s in enumerate(shifts):
            if s:
                slow[i] = np.roll(slow[i], int(s))
        np.testing.assert_array_equal(fast, slow)


class TestSynth:
    def test_trace_layout(self):
        dev = DeviceModel(samples_per_step=2)
        layout = trace_layout(dev)
        assert layout.n_samples == 2 * len(MUL_STEP_LABELS)
        assert layout.slice_of("p_ll") == slice(8, 10)
        assert layout.sample_of("sign_out") == 2 * MUL_STEP_LABELS.index("sign_out")

    def test_zero_operand_rejected(self):
        with pytest.raises(ValueError):
            mul_step_values(0, np.array([np.float64(1.5).view(np.uint64)]))

    def test_synthesize_shapes(self):
        dev = DeviceModel()
        y = (np.random.default_rng(0).standard_normal(50) + 2.0).view(np.uint64)
        x = np.float64(3.25).view(np.uint64)
        traces, values = synthesize_mul_traces(int(x), y, dev)
        assert traces.shape == (50, len(MUL_STEP_LABELS))
        assert values.shape == (50, len(MUL_STEP_LABELS))

    def test_leakage_depends_on_secret(self):
        """Noise-free traces for two different secrets must differ."""
        dev = DeviceModel(noise_sigma=0.0)
        y = (np.random.default_rng(1).standard_normal(10) + 3.0).view(np.uint64)
        t1, _ = synthesize_mul_traces(int(np.float64(1.237).view(np.uint64)), y, dev)
        t2, _ = synthesize_mul_traces(int(np.float64(9.991).view(np.uint64)), y, dev)
        assert not np.array_equal(t1, t2)


class TestDoublesLayout:
    def test_roundtrip(self):
        rng = np.random.default_rng(5)
        f_fft = rng.standard_normal(8) + 1j * rng.standard_normal(8)
        np.testing.assert_allclose(doubles_to_fft(fft_to_doubles(f_fft)), f_fft)

    def test_interleaving_order(self):
        f_fft = np.array([1 + 2j, 3 + 4j])
        np.testing.assert_array_equal(fft_to_doubles(f_fft), [1, 2, 3, 4])


class TestCapture:
    def test_traceset_structure(self, kp):
        sk, _ = kp
        ts = capture_coefficient(sk, 0, n_traces=200)
        assert len(ts.segments) == 2
        assert ts.segments[0].name == "x_re"
        assert ts.segments[1].name == "x_im"
        assert ts.true_secret is not None
        assert ts.meta["n"] == 16

    def test_known_operands_match_fft_c(self, kp):
        sk, _ = kp
        camp = CaptureCampaign(sk=sk, n_traces=100)
        ts = camp.capture(4)  # slot 2 real part
        np.testing.assert_array_equal(
            ts.segments[0].known_y.view(np.float64), camp.c_fft[:, 2].real
        )

    def test_true_secret_is_fft_f_double(self, kp):
        sk, _ = kp
        camp = CaptureCampaign(sk=sk, n_traces=50)
        ts = camp.capture(3)
        from repro.math import fft

        expected = fft.fft(sk.f)[1].imag
        assert np.uint64(ts.true_secret).view(np.float64) == expected

    def test_deterministic(self, kp):
        sk, _ = kp
        a = capture_coefficient(sk, 1, n_traces=100, seed=9)
        b = capture_coefficient(sk, 1, n_traces=100, seed=9)
        np.testing.assert_array_equal(a.segments[0].traces, b.segments[0].traces)

    def test_bad_target_rejected(self, kp):
        sk, _ = kp
        camp = CaptureCampaign(sk=sk, n_traces=10)
        with pytest.raises(ValueError):
            camp.capture(16)

    def test_bad_mode_rejected(self, kp):
        sk, _ = kp
        with pytest.raises(ValueError):
            CaptureCampaign(sk=sk, mode="replay")

    def test_hash_mode_runs(self, kp):
        sk, _ = kp
        camp = CaptureCampaign(sk=sk, n_traces=20, mode="hash")
        ts = camp.capture(0)
        assert ts.segments[0].n_traces <= 20

    def test_head_truncates(self, kp):
        sk, _ = kp
        ts = capture_coefficient(sk, 0, n_traces=100)
        small = ts.head(30)
        assert all(seg.n_traces == 30 for seg in small.segments)
        assert small.true_secret == ts.true_secret

    def test_corpus_rng_domain_separated(self, kp):
        """Hash and direct mode must draw from *different* streams for the
        same seed — otherwise switching modes silently reuses randomness."""
        sk, _ = kp
        direct = CaptureCampaign(sk=sk, n_traces=64, mode="direct", seed=5)
        hashed = CaptureCampaign(sk=sk, n_traces=64, mode="hash", seed=5)
        assert not np.array_equal(direct.c_fft, hashed.c_fft)

    def test_direct_corpus_deterministic(self, kp):
        sk, _ = kp
        a = CaptureCampaign(sk=sk, n_traces=64, mode="direct", seed=5)
        b = CaptureCampaign(sk=sk, n_traces=64, mode="direct", seed=5)
        np.testing.assert_array_equal(a.c_fft, b.c_fft)
        c = CaptureCampaign(sk=sk, n_traces=64, mode="direct", seed=6)
        assert not np.array_equal(a.c_fft, c.c_fft)

    def test_capture_meta_reports_kept_counts(self, kp):
        """The traceset records both the requested signings and the rows
        that survived the non-normal-operand filter, per segment."""
        sk, _ = kp
        camp = CaptureCampaign(sk=sk, n_traces=80)
        ts = camp.capture(0)
        assert ts.meta["n_requested"] == 80
        assert ts.meta["n_kept"] == tuple(seg.n_traces for seg in ts.segments)
        assert all(0 < kept <= 80 for kept in ts.meta["n_kept"])

    def test_campaign_pickle_roundtrip(self, kp):
        """Workers receive the campaign by pickle; caches are stripped and
        the rebuilt corpus must be identical."""
        import pickle

        sk, _ = kp
        camp = CaptureCampaign(sk=sk, n_traces=30, seed=12)
        _ = camp.c_fft  # populate the cache that __getstate__ must strip
        clone = pickle.loads(pickle.dumps(camp))
        np.testing.assert_array_equal(clone.c_fft, camp.c_fft)
        a = camp.capture(1)
        b = clone.capture(1)
        np.testing.assert_array_equal(a.segments[0].traces, b.segments[0].traces)

    def test_value_transform_hook(self, kp):
        sk, _ = kp
        calls = []

        def xform(values, rng):
            calls.append(values.shape)
            return values

        camp = CaptureCampaign(sk=sk, n_traces=30, value_transform=xform)
        camp.capture(0)
        assert len(calls) == 2  # one per segment


class TestTraceSetIO:
    def test_save_load_roundtrip(self, kp, tmp_path):
        sk, _ = kp
        ts = capture_coefficient(sk, 2, n_traces=50)
        path = str(tmp_path / "ts.npz")
        ts.save(path)
        loaded = TraceSet.load(path)
        assert loaded.target_index == ts.target_index
        assert loaded.true_secret == ts.true_secret
        assert loaded.layout.samples_per_step == ts.layout.samples_per_step
        for a, b in zip(loaded.segments, ts.segments):
            np.testing.assert_array_equal(a.traces, b.traces)
            np.testing.assert_array_equal(a.known_y, b.known_y)
            assert a.name == b.name

    def test_segment_validation(self):
        with pytest.raises(ValueError):
            Segment(known_y=np.zeros(3, dtype=np.uint64), traces=np.zeros((4, 2)))

    def test_n_traces_totals(self, kp):
        sk, _ = kp
        ts = capture_coefficient(sk, 0, n_traces=40)
        assert ts.n_traces == sum(s.n_traces for s in ts.segments)
