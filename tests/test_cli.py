"""Tests for the repro-falcon command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def keyfiles(tmp_path_factory):
    d = tmp_path_factory.mktemp("cli")
    sk = str(d / "sk.json")
    pk = str(d / "pk.json")
    rc = main(["keygen", "--n", "16", "--seed", "cli-test", "--sk", sk, "--pk", pk])
    assert rc == 0
    return d, sk, pk


class TestCli:
    def test_params(self, capsys):
        assert main(["params"]) == 0
        out = capsys.readouterr().out
        assert "512" in out and "34034726" in out

    def test_keygen_deterministic(self, tmp_path):
        a_sk, a_pk = str(tmp_path / "a_sk"), str(tmp_path / "a_pk")
        b_sk, b_pk = str(tmp_path / "b_sk"), str(tmp_path / "b_pk")
        main(["keygen", "--n", "8", "--seed", "same", "--sk", a_sk, "--pk", a_pk])
        main(["keygen", "--n", "8", "--seed", "same", "--sk", b_sk, "--pk", b_pk])
        assert open(a_sk).read() == open(b_sk).read()
        assert open(a_pk).read() == open(b_pk).read()

    def test_sign_verify_roundtrip(self, keyfiles, capsys):
        d, sk, pk = keyfiles
        sig = str(d / "sig.hex")
        assert main(["sign", "--sk", sk, "--message", "hello", "--out", sig]) == 0
        assert main(["verify", "--pk", pk, "--message", "hello", "--sig", sig]) == 0
        out = capsys.readouterr().out
        assert "ACCEPT" in out

    def test_verify_rejects_wrong_message(self, keyfiles, capsys):
        d, sk, pk = keyfiles
        sig = str(d / "sig2.hex")
        main(["sign", "--sk", sk, "--message", "hello", "--out", sig])
        assert main(["verify", "--pk", pk, "--message", "HELLO", "--sig", sig]) == 1
        assert "REJECT" in capsys.readouterr().out

    def test_capture_and_attack_coefficient(self, keyfiles, capsys):
        d, sk, _ = keyfiles
        ts = str(d / "ts.npz")
        rc = main([
            "capture", "--sk", sk, "--index", "0", "--traces", "6000", "--out", ts,
            "--trs-prefix", str(d / "coef"),
        ])
        assert rc == 0
        rc = main(["attack-coefficient", "--traceset", ts])
        assert rc == 0
        out = capsys.readouterr().out
        assert "recovered coefficient pattern" in out
        assert (d / "coef_x_re.trs").exists()

    def test_attack_coefficient_telemetry_outputs(self, keyfiles, capsys):
        import json

        from repro.obs import read_journal

        d, sk, _ = keyfiles
        ts = str(d / "ts_obs.npz")
        assert main([
            "capture", "--sk", sk, "--index", "0", "--traces", "6000", "--out", ts,
        ]) == 0
        journal = str(d / "coeff.jsonl")
        metrics_out = str(d / "coeff_metrics.json")
        rc = main([
            "attack-coefficient", "--traceset", ts,
            "--log-json", journal, "--metrics-out", metrics_out,
        ])
        assert rc == 0
        capsys.readouterr()
        events = read_journal(journal)
        assert [e["event"] for e in events] == ["span", "metrics"]
        root = events[0]["span"]
        assert root["name"] == "attack_coefficient"
        assert {c["name"] for c in root["children"]} == {"mantissa", "exponent", "sign"}
        payload = json.loads(open(metrics_out).read())
        assert payload["metrics"]["counters"]["cpa.rows_correlated"] > 0
        assert set(payload["per_stage_s"]) == {"mantissa", "exponent", "sign"}

    def test_attack_telemetry_outputs_and_stdout_stays_clean(self, tmp_path, capsys):
        import json

        from repro.obs import read_journal

        d = tmp_path
        sk = str(d / "sk8.json")
        assert main([
            "keygen", "--n", "8", "--seed", "cli-obs", "--sk", sk,
            "--pk", str(d / "pk8.json"),
        ]) == 0
        journal = str(d / "attack.jsonl")
        metrics_out = str(d / "attack_metrics.json")
        rc = main([
            "attack", "--sk", sk, "--traces", "450", "--noise", "2.0",
            "--seed", "61", "--progress",
            "--log-json", journal, "--metrics-out", metrics_out,
        ])
        captured = capsys.readouterr()
        assert rc == 0
        # progress chatter went to stderr; stdout holds only the report
        assert "coefficient" in captured.err
        assert "[" not in captured.out.splitlines()[0]
        assert "full key extraction" in captured.out
        events = read_journal(journal)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        assert "progress" in kinds and "span" in kinds and "metrics" in kinds
        payload = json.loads(open(metrics_out).read())
        assert set(payload) >= {"per_stage_s", "rows_correlated", "metrics", "span"}
        assert payload["span"]["name"] == "attack"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestStoreInfo:
    def test_reports_backend_and_target(self, tmp_path, capsys):
        from repro.falcon import FalconParams, keygen
        from repro.leakage import CaptureCampaign, DeviceModel

        sk, _ = keygen(FalconParams.get(8), seed=b"cli-store")
        CaptureCampaign(
            sk=sk, device=DeviceModel(), n_traces=32, seed=3, target="samplerz"
        ).materialize(tmp_path / "store", targets=[0])
        assert main(["store-info", "--store", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "backend=numpy-batch" in out
        assert "target=samplerz" in out

    def test_legacy_manifest_without_backend_or_target(self, tmp_path, capsys):
        """A hand-written pre-backend/pre-surface manifest (the on-disk
        format of earlier releases) must still summarize cleanly, with
        both fields defaulting to the only engines that existed then."""
        import json

        store = tmp_path / "legacy"
        store.mkdir()
        (store / "manifest.json").write_text(json.dumps({
            "format": "falcon-down-campaign-store",
            "version": 1,
            "n": 8,
            "n_targets": 8,
            "n_traces": 100,
            "mode": "direct",
            "seed": 2021,
            # no "backend" / "target": written before those keys existed
            "device": {
                "gain": 1.0, "offset": 0.0, "noise_sigma": 10.0,
                "samples_per_step": 1, "jitter": 0.0, "seed": 2021,
                "model": "HammingWeightModel",
            },
            "targets": {"0": {"n_kept": [100, 100]}},
        }))
        assert main(["store-info", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "backend=numpy-batch" in out
        assert "target=fpr-mul" in out
        assert "shards: 1/8 complete" in out
