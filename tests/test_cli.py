"""Tests for the repro-falcon command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def keyfiles(tmp_path_factory):
    d = tmp_path_factory.mktemp("cli")
    sk = str(d / "sk.json")
    pk = str(d / "pk.json")
    rc = main(["keygen", "--n", "16", "--seed", "cli-test", "--sk", sk, "--pk", pk])
    assert rc == 0
    return d, sk, pk


class TestCli:
    def test_params(self, capsys):
        assert main(["params"]) == 0
        out = capsys.readouterr().out
        assert "512" in out and "34034726" in out

    def test_keygen_deterministic(self, tmp_path):
        a_sk, a_pk = str(tmp_path / "a_sk"), str(tmp_path / "a_pk")
        b_sk, b_pk = str(tmp_path / "b_sk"), str(tmp_path / "b_pk")
        main(["keygen", "--n", "8", "--seed", "same", "--sk", a_sk, "--pk", a_pk])
        main(["keygen", "--n", "8", "--seed", "same", "--sk", b_sk, "--pk", b_pk])
        assert open(a_sk).read() == open(b_sk).read()
        assert open(a_pk).read() == open(b_pk).read()

    def test_sign_verify_roundtrip(self, keyfiles, capsys):
        d, sk, pk = keyfiles
        sig = str(d / "sig.hex")
        assert main(["sign", "--sk", sk, "--message", "hello", "--out", sig]) == 0
        assert main(["verify", "--pk", pk, "--message", "hello", "--sig", sig]) == 0
        out = capsys.readouterr().out
        assert "ACCEPT" in out

    def test_verify_rejects_wrong_message(self, keyfiles, capsys):
        d, sk, pk = keyfiles
        sig = str(d / "sig2.hex")
        main(["sign", "--sk", sk, "--message", "hello", "--out", sig])
        assert main(["verify", "--pk", pk, "--message", "HELLO", "--sig", sig]) == 1
        assert "REJECT" in capsys.readouterr().out

    def test_capture_and_attack_coefficient(self, keyfiles, capsys):
        d, sk, _ = keyfiles
        ts = str(d / "ts.npz")
        rc = main([
            "capture", "--sk", sk, "--target", "0", "--traces", "6000", "--out", ts,
            "--trs-prefix", str(d / "coef"),
        ])
        assert rc == 0
        rc = main(["attack-coefficient", "--traceset", ts])
        assert rc == 0
        out = capsys.readouterr().out
        assert "recovered coefficient pattern" in out
        assert (d / "coef_x_re.trs").exists()

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
