"""Corner-case stress tests across the numerical core."""

import math
import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.falcon.ntru_solve import NtruSolveError, ntru_solve
from repro.fpr import emu
from repro.math import fft, gaussian, poly
from repro.utils.rng import ChaCha20Prng


def bits(x: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", x))[0]


class TestFprCorners:
    def test_mul_near_overflow_boundary(self):
        """Largest finite product still computes bit-exactly."""
        x = math.sqrt(1.7e308)
        ref = x * x
        assert math.isfinite(ref)
        assert emu.fpr_mul(bits(x), bits(x)) == bits(ref)

    def test_mul_smallest_normal_result(self):
        x = 2.0**-511
        ref = x * x  # 2^-1022: the smallest normal
        assert emu.fpr_mul(bits(x), bits(x)) == bits(ref)

    def test_power_of_two_operands(self):
        for ex in (-500, -1, 0, 1, 500):
            for ey in (-400, 0, 400):
                x, y = 2.0**ex, 2.0**ey
                if math.isfinite(x * y) and x * y != 0.0:
                    assert emu.fpr_mul(bits(x), bits(y)) == bits(x * y)

    def test_add_total_cancellation_chain(self):
        a = bits(1.0000000000000002)  # 1 + ulp
        b = bits(-1.0)
        out = emu.fpr_add(a, b)
        assert emu.fpr_to_float(out) == 1.0000000000000002 - 1.0

    def test_sqrt_of_ulp_boundaries(self):
        for v in (1.0, 1.0 + 2**-52, 4.0 - 2**-50, 2.0):
            assert emu.fpr_sqrt(bits(v)) == bits(math.sqrt(v))

    @given(st.integers(1, 2**52))
    @settings(max_examples=100)
    def test_square_of_exact_integers(self, k):
        x = float(k)
        ref = x * x
        if math.isfinite(ref):
            assert emu.fpr_mul(bits(x), bits(x)) == bits(ref)

    def test_rint_half_even_ladder(self):
        for k in range(-6, 7):
            x = k + 0.5
            assert emu.fpr_rint(bits(x)) == round(x)  # Python round is half-even


class TestFftPrecision:
    def test_large_coefficient_roundtrip(self):
        """Coefficients near 2^50 still invert to within rounding."""
        rng = np.random.default_rng(0)
        f = (rng.integers(-(2**50), 2**50, 64)).astype(np.float64)
        back = fft.ifft(fft.fft(f))
        np.testing.assert_allclose(back, f, rtol=0, atol=0.4)

    def test_alternating_poly(self):
        f = np.array([(-1.0) ** i for i in range(128)])
        np.testing.assert_allclose(fft.ifft(fft.fft(f)), f, atol=1e-9)

    def test_single_spike(self):
        f = np.zeros(256)
        f[200] = 1e6
        np.testing.assert_allclose(fft.ifft(fft.fft(f)), f, atol=1e-5)


class TestNtruSolveLarger:
    def test_n128_solves(self):
        rng = ChaCha20Prng(b"n128")
        sigma = 1.17 * (12289 / 256) ** 0.5
        for _ in range(5):
            f = gaussian.sample_poly_dgauss(128, sigma, rng)
            g = gaussian.sample_poly_dgauss(128, sigma, rng)
            try:
                big_f, big_g = ntru_solve(f, g, 12289)
            except NtruSolveError:
                continue
            lhs = poly.sub(poly.mul(f, big_g), poly.mul(g, big_f))
            assert lhs == poly.constant(12289, 128)
            return
        pytest.fail("no solvable pair at n=128 in 5 attempts")


class TestPolyBigIntStress:
    def test_thousand_bit_coefficients(self):
        a = [(3**200) * (i + 1) for i in range(8)]
        b = [-(7**150) * (i + 2) for i in range(8)]
        ab = poly.mul(a, b)
        # spot check one coefficient against a direct computation
        direct = 0
        for i in range(8):
            for j in range(8):
                k = i + j
                term = a[i] * b[j]
                if k == 3:
                    direct += term
                elif k == 3 + 8:
                    direct -= term
        assert ab[3] == direct

    def test_field_norm_tower_consistency(self):
        """N(N(f)) computed two ways agrees (two tower levels)."""
        rng = ChaCha20Prng(b"tower")
        f = gaussian.sample_poly_dgauss(16, 10.0, rng)
        n1 = poly.field_norm(poly.field_norm(f))
        # N is multiplicative along f(x)f(-x): recompute via lift identity
        lifted = poly.mul(poly.lift(poly.field_norm(f)), [1] + [0] * 15)
        assert poly.field_norm(poly.split(lifted)[0]) == n1
