"""Tests for the TRS trace container."""

import numpy as np
import pytest

from repro.falcon import FalconParams, keygen
from repro.leakage import capture_coefficient
from repro.leakage.trs import TrsError, read_trs, traceset_to_trs, trs_to_segment, write_trs


class TestTrsRoundtrip:
    def test_traces_only(self, tmp_path):
        path = str(tmp_path / "a.trs")
        traces = np.random.default_rng(0).standard_normal((20, 7)).astype(np.float32)
        write_trs(path, traces)
        got = read_trs(path)
        np.testing.assert_array_equal(got.traces, traces)
        assert got.data.shape == (20, 0)

    def test_with_data_and_description(self, tmp_path):
        path = str(tmp_path / "b.trs")
        traces = np.zeros((3, 4), dtype=np.float32)
        data = np.arange(12, dtype=np.uint8).reshape(3, 4)
        write_trs(path, traces, data, description="demo set")
        got = read_trs(path)
        np.testing.assert_array_equal(got.data, data)
        assert got.description == "demo set"

    def test_data_row_mismatch_rejected(self, tmp_path):
        with pytest.raises(TrsError):
            write_trs(str(tmp_path / "c.trs"), np.zeros((3, 4)), np.zeros((2, 1)))

    def test_large_header_field(self, tmp_path):
        """Descriptions > 127 bytes use the long-length TLV form."""
        path = str(tmp_path / "d.trs")
        desc = "x" * 300
        write_trs(path, np.zeros((1, 2), dtype=np.float32), description=desc)
        assert read_trs(path).description == desc

    def test_truncated_body_rejected(self, tmp_path):
        path = str(tmp_path / "e.trs")
        write_trs(path, np.zeros((4, 8), dtype=np.float32))
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[:-10])
        with pytest.raises(TrsError):
            read_trs(path)

    def test_missing_trace_block_rejected(self, tmp_path):
        path = str(tmp_path / "f.trs")
        open(path, "wb").write(bytes([0x41, 0x04, 1, 0, 0, 0]))
        with pytest.raises(TrsError):
            read_trs(path)

    def test_int8_coding_read(self, tmp_path):
        """Externally produced int8 TRS files are readable."""
        import struct

        path = str(tmp_path / "g.trs")
        samples = np.array([[1, -2, 3]], dtype=np.int8)
        with open(path, "wb") as fh:
            fh.write(bytes([0x41, 0x04]) + struct.pack("<I", 1))
            fh.write(bytes([0x42, 0x04]) + struct.pack("<I", 3))
            fh.write(bytes([0x43, 0x01, 0x01]))
            fh.write(bytes([0x5F, 0x00]))
            fh.write(samples.tobytes())
        got = read_trs(path)
        np.testing.assert_array_equal(got.traces, samples.astype(np.float32))


class TestTraceSetExport:
    def test_export_import(self, tmp_path):
        sk, _ = keygen(FalconParams.get(8), seed=b"trs")
        ts = capture_coefficient(sk, 0, n_traces=60)
        paths = traceset_to_trs(ts, str(tmp_path / "coef0"))
        assert len(paths) == 2
        seg = trs_to_segment(paths[0])
        np.testing.assert_array_equal(seg.known_y, ts.segments[0].known_y)
        np.testing.assert_array_equal(seg.traces, ts.segments[0].traces)

    def test_import_requires_operand_data(self, tmp_path):
        path = str(tmp_path / "h.trs")
        write_trs(path, np.zeros((2, 3), dtype=np.float32))
        with pytest.raises(TrsError):
            trs_to_segment(path)
