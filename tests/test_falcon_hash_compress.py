"""Tests for HashToPoint and signature compression."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.falcon.compress import CompressError, compress, decompress
from repro.falcon.hash_to_point import hash_to_point

Q = 12289


class TestHashToPoint:
    def test_deterministic(self):
        assert hash_to_point(b"abc", Q, 64) == hash_to_point(b"abc", Q, 64)

    def test_different_inputs_differ(self):
        assert hash_to_point(b"abc", Q, 64) != hash_to_point(b"abd", Q, 64)

    @pytest.mark.parametrize("n", [8, 64, 512, 1024])
    def test_range_and_length(self, n):
        c = hash_to_point(b"range", Q, n)
        assert len(c) == n
        assert all(0 <= v < Q for v in c)

    def test_uniformity(self):
        """Mean of many coefficients should approach (q-1)/2."""
        vals = []
        for i in range(40):
            vals += hash_to_point(f"u{i}".encode(), Q, 64)
        mean = sum(vals) / len(vals)
        assert abs(mean - (Q - 1) / 2) < 150

    def test_q_too_large(self):
        with pytest.raises(ValueError):
            hash_to_point(b"x", 1 << 17, 8)

    def test_salt_prefix_matters(self):
        """(salt || m) hashing: moving a byte across the boundary changes c."""
        assert hash_to_point(b"ab" + b"c", Q, 16) == hash_to_point(b"abc", Q, 16)
        # identical concatenation means the signer must bind salt length
        # elsewhere (the fixed 40-byte salt does that).


coeffs = st.lists(st.integers(-2047, 2047), min_size=8, max_size=8)


class TestCompress:
    BITS = 8 * 52 - 328  # FALCON-8 toy budget

    @given(coeffs)
    @settings(max_examples=200)
    def test_roundtrip(self, s):
        try:
            blob = compress(s, self.BITS)
        except CompressError:
            return  # does not fit the budget: legal signer-side event
        assert decompress(blob, self.BITS, 8) == s
        assert len(blob) == (self.BITS + 7) // 8

    def test_known_encoding_size(self):
        blob = compress([0] * 8, self.BITS)
        # each zero coefficient costs 1 sign + 7 low + 1 terminator = 9 bits
        assert len(blob) == (self.BITS + 7) // 8

    def test_too_large_coefficient_rejected(self):
        with pytest.raises(CompressError):
            compress([1 << 12] + [0] * 7, self.BITS)

    def test_budget_overflow_rejected(self):
        with pytest.raises(CompressError):
            compress([2047] * 8, 80)

    def test_minus_zero_rejected(self):
        blob = bytearray(compress([0] * 8, self.BITS))
        blob[0] |= 0x80  # set the first sign bit: -0 encoding
        with pytest.raises(CompressError):
            decompress(bytes(blob), self.BITS, 8)

    def test_nonzero_padding_rejected(self):
        blob = bytearray(compress([0] * 8, self.BITS))
        blob[-1] |= 0x01
        with pytest.raises(CompressError):
            decompress(bytes(blob), self.BITS, 8)

    def test_truncated_rejected(self):
        blob = compress([5, -9, 100, -2047, 0, 1, 2, 3], self.BITS)
        with pytest.raises(CompressError):
            decompress(blob[:4], self.BITS, 8)

    def test_unary_run_bounded(self):
        # craft a bitstream that is all zeros: unary run never terminates
        with pytest.raises(CompressError):
            decompress(bytes(100), 800, 8)

    @given(coeffs)
    @settings(max_examples=100)
    def test_canonicality(self, s):
        """Exactly one valid encoding: re-encoding a decode is identity."""
        try:
            blob = compress(s, self.BITS)
        except CompressError:
            return
        assert compress(decompress(blob, self.BITS, 8), self.BITS) == blob
