"""The generic ``contract:<id>`` traced surface end to end.

The surface compiles a ranked contract entry into an attackable target:
its line is re-anchored in the installed package, the oracle workload
runs once under ``sys.settrace`` to collect the line's hits, and each
hit's live operands become device step values. These tests pin the
registry dispatch, the trace layout, and a full
``recover_full_key`` run against the shipped contract's NTT butterfly
entry at n=8 — the previously-ancillary entry the exploitability triage
promotes to a first-class attack target.
"""

from __future__ import annotations

import os

import pytest

from repro.falcon import FalconParams, keygen
from repro.leakage import CaptureCampaign, DeviceModel
from repro.sast.contract import load_contract
from repro.targets import get_target
from repro.targets.traced import MAX_TARGETS, VALUE_BITS, resolve_traced_target

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_CONTRACT = os.path.join(_REPO_ROOT, "leakage-contract.json")


def _butterfly_entry():
    contract = load_contract(_CONTRACT)
    for entry in contract.entries:
        if entry.path == "math/ntt.py" and "u - v" in entry.line_text:
            return entry
    raise AssertionError("shipped contract lost its NTT butterfly entry")


@pytest.fixture(scope="module")
def entry():
    return _butterfly_entry()


@pytest.fixture(scope="module")
def victim():
    sk, pk = keygen(FalconParams.get(8), seed=b"pin-traced")
    return sk, pk


@pytest.fixture(autouse=True)
def _contract_env(monkeypatch):
    monkeypatch.setenv("REPRO_CONTRACT", _CONTRACT)


def _campaign(sk, entry, n_traces=512, seed=7):
    return CaptureCampaign(
        sk=sk,
        device=DeviceModel(noise_sigma=2.0),
        n_traces=n_traces,
        seed=seed,
        target=f"contract:{entry.exploitability.entry_id}",
    )


class TestResolution:
    def test_registry_dispatch(self, entry):
        surface = get_target(f"contract:{entry.exploitability.entry_id}")
        assert surface.name == f"contract:{entry.exploitability.entry_id}"
        assert surface.rel_path == "math/ntt.py"
        assert surface.has_forgery is False
        # the watched operands are the line's identifiers, sorted
        assert surface.value_names == ("a", "half", "k", "q", "u", "v")

    def test_unknown_id_lists_remedy(self):
        with pytest.raises(ValueError, match="repro-sast rank"):
            get_target("contract:000000000000")

    def test_missing_contract_names_the_env_var(self, tmp_path):
        with pytest.raises(ValueError, match="REPRO_CONTRACT"):
            resolve_traced_target(
                "contract:dead00000000", os.path.join(str(tmp_path), "nope.json")
            )


class TestCaptureLayout:
    def test_campaign_shape_and_meta(self, victim, entry):
        sk, _ = victim
        campaign = _campaign(sk, entry)
        surface = get_target(campaign.target)
        # the butterfly line is hot: the surface caps the exposed hits
        assert campaign.n_targets == MAX_TARGETS
        layout = surface.layout(campaign.device)
        # per operand: one full-word step + VALUE_BITS bit steps
        assert len(layout.labels) == len(surface.value_names) * (1 + VALUE_BITS)
        assert "u" in layout.labels and "u_b00" in layout.labels
        ts = campaign.capture(0)
        assert ts.meta["target"] == campaign.target
        assert ts.meta["entry_id"] == entry.exploitability.entry_id
        assert ts.meta["site"].startswith("math/ntt.py:")
        seg, = ts.segments
        assert seg.traces.shape == (512, layout.n_samples)

    def test_primary_operand_is_the_intermediate(self, victim, entry):
        sk, _ = victim
        ts = _campaign(sk, entry).capture(0)
        # u (the butterfly's live value) varies most across hits; loop
        # geometry (k, half) and the modulus constant q must not win
        assert ts.meta["primary"] == "u"
        assert ts.true_secret == ts.meta["true_values"]["u"]


class TestEndToEnd:
    def test_recover_full_key_over_contract_surface(self, victim, entry):
        from repro.attack import AttackConfig, recover_full_key

        sk, pk = victim
        campaign = _campaign(sk, entry)
        result = recover_full_key(campaign, pk, config=AttackConfig())
        assert result.recovered_sk is None
        assert len(result.recovered_values) == MAX_TARGETS
        assert result.records and all(r.correct for r in result.records)
        # the recovered stream is the ground-truth operand stream
        truth = [
            campaign.capture(i).meta["true_values"]["u"]
            for i in range(MAX_TARGETS)
        ]
        assert result.recovered_values == truth

    def test_recovery_deterministic_with_positive_margin(self, victim, entry):
        from repro.attack import AttackConfig

        sk, _ = victim
        campaign = _campaign(sk, entry)
        surface = get_target(campaign.target)
        rec_a = surface.recover(campaign.capture(3), AttackConfig())
        rec_b = surface.recover(campaign.capture(3), AttackConfig())
        assert rec_a == rec_b
        assert rec_a.correct
        assert rec_a.margin > 0.0
        assert set(rec_a.values) == set(surface.value_names)
