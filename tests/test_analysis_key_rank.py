"""Tests for full-key rank estimation (histogram convolution vs exact)."""

import numpy as np
import pytest

from repro.analysis.key_rank import estimate_key_rank, exact_key_rank


def random_case(n_coeffs, n_cands, advantage, seed):
    """Scores where the true candidate leads by `advantage` on average."""
    rng = np.random.default_rng(seed)
    case = []
    for j in range(n_coeffs):
        scores = rng.normal(0, 1.0, n_cands)
        idx = int(rng.integers(0, n_cands))
        scores[idx] += advantage
        case.append((scores, idx))
    return case


class TestExactRank:
    def test_perfect_attack_rank_one(self):
        case = random_case(4, 8, advantage=50.0, seed=0)
        assert exact_key_rank(case) == 1

    def test_uniform_scores_rank_maximal(self):
        case = [(np.zeros(4), 0) for _ in range(3)]
        assert exact_key_rank(case) == 4**3

    def test_single_coefficient(self):
        scores = np.array([0.1, 0.9, 0.5])
        assert exact_key_rank([(scores, 1)], beta=1.0) == 1
        assert exact_key_rank([(scores, 2)], beta=1.0) == 2
        assert exact_key_rank([(scores, 0)], beta=1.0) == 3


class TestEstimatedRank:
    @pytest.mark.parametrize("advantage", [3.0, 0.5, 0.0])
    def test_brackets_exact_rank(self, advantage):
        for seed in range(5):
            case = random_case(4, 6, advantage, seed)
            exact = exact_key_rank(case, beta=10.0)
            est = estimate_key_rank(case, beta=10.0, n_bins=4096)
            assert est.log2_rank_lower - 0.6 <= np.log2(exact) <= est.log2_rank_upper + 0.6, (
                seed,
                exact,
                est,
            )

    def test_strong_attack_estimates_near_zero(self):
        case = random_case(8, 16, advantage=40.0, seed=1)
        est = estimate_key_rank(case)
        assert est.log2_rank_upper < 2.0

    def test_weak_attack_estimates_large(self):
        case = [(np.zeros(16), 0) for _ in range(8)]
        est = estimate_key_rank(case)
        assert est.log2_rank_lower > 8 * 4 - 3  # ~16^8 combinations

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_key_rank([])
        with pytest.raises(ValueError):
            estimate_key_rank([(np.zeros(4), 9)])

    def test_single_coefficient_brackets_at_small_bin_counts(self):
        """Regression for the binning cleanup: the per-coefficient
        histogram and the totals grid now share one convention (bin 0
        at lo, bin n_bins-1 at hi, step (hi-lo)/(n_bins-1)), so the
        bounds bracket the exact rank even with very few bins."""
        scores = np.array([5.0, 3.0, 1.0, -2.0])
        for n_bins in (16, 64, 2048):
            for idx in range(len(scores)):
                exact = exact_key_rank([(scores, idx)], beta=1.0)
                est = estimate_key_rank([(scores, idx)], beta=1.0, n_bins=n_bins)
                assert est.log2_rank_lower <= np.log2(exact) <= est.log2_rank_upper, (
                    n_bins,
                    idx,
                )

    def test_bounds_converge_with_bin_count(self):
        """Finer binning can only tighten (or keep) the bracket width."""
        case = random_case(4, 6, advantage=1.0, seed=3)
        widths = []
        for n_bins in (64, 512, 4096):
            est = estimate_key_rank(case, beta=10.0, n_bins=n_bins)
            widths.append(est.log2_rank_upper - est.log2_rank_lower)
        assert widths[-1] <= widths[0] + 1e-9
