"""Tests for the SASCA substrate (factor graph BP + single-trace NTT)."""

import numpy as np
import pytest

from repro.math import ntt
from repro.sasca import FactorGraph, NttSasca, hw_prior, single_trace_attack

Q = 257


class TestHwPrior:
    def test_normalized(self):
        p = hw_prior(3.0, Q, noise_sigma=1.0)
        assert p.shape == (Q,)
        assert p.sum() == pytest.approx(1.0)

    def test_peaks_at_matching_hw(self):
        p = hw_prior(1.0, Q, noise_sigma=0.3)
        best = int(np.argmax(p))
        assert bin(best).count("1") == 1

    def test_low_noise_concentrates(self):
        loose = hw_prior(4.0, Q, noise_sigma=3.0)
        tight = hw_prior(4.0, Q, noise_sigma=0.3)
        assert tight.max() > loose.max()


class TestFactorGraphBasics:
    def test_linear_factor_exact_inference(self):
        """c = a + 2b with a, c pinned must determine b."""
        g = FactorGraph(q=Q, n_variables=3)
        delta_a = np.zeros(Q)
        delta_a[10] = 1.0
        delta_c = np.zeros(Q)
        delta_c[(10 + 2 * 77) % Q] = 1.0
        g.set_prior(0, delta_a)
        g.set_prior(2, delta_c)
        g.add_linear_factor(0, 1, 2, 2)
        marg = g.run(iterations=6)
        assert int(marg[1].argmax()) == 77

    def test_butterfly_factor_exact_inference(self):
        """Pinning u and v determines both butterfly outputs."""
        g = FactorGraph(q=Q, n_variables=4)
        u_val, v_val, w = 100, 33, 5
        for var, val in ((0, u_val), (1, v_val)):
            d = np.zeros(Q)
            d[val] = 1.0
            g.set_prior(var, d)
        g.add_butterfly_factor(0, 1, 2, 3, w)
        marg = g.run(iterations=6)
        assert int(marg[2].argmax()) == (u_val + w * v_val) % Q
        assert int(marg[3].argmax()) == (u_val - w * v_val) % Q

    def test_butterfly_inverse_inference(self):
        """Pinning both outputs determines both inputs."""
        g = FactorGraph(q=Q, n_variables=4)
        u_val, v_val, w = 9, 200, 11
        up = (u_val + w * v_val) % Q
        vp = (u_val - w * v_val) % Q
        for var, val in ((2, up), (3, vp)):
            d = np.zeros(Q)
            d[val] = 1.0
            g.set_prior(var, d)
        g.add_butterfly_factor(0, 1, 2, 3, w)
        marg = g.run(iterations=6)
        assert int(marg[0].argmax()) == u_val
        assert int(marg[1].argmax()) == v_val

    def test_validation(self):
        g = FactorGraph(q=Q, n_variables=2)
        with pytest.raises(ValueError):
            g.add_linear_factor(0, 1, 5, 1)
        with pytest.raises(ValueError):
            g.set_prior(0, np.zeros(Q))
        with pytest.raises(ValueError):
            g.set_prior(0, np.ones(3))
        with pytest.raises(ValueError):
            FactorGraph(q=1, n_variables=1)


class TestNttSasca:
    @pytest.fixture(scope="class")
    def model(self):
        return NttSasca(n=16, q=Q)

    @pytest.fixture(scope="class")
    def secret(self):
        return list(np.random.default_rng(0).integers(0, Q, 16))

    def test_graph_reproduces_ntt(self, model, secret):
        assert model.output(secret) == ntt.ntt(secret, Q)

    def test_single_trace_recovery_low_noise(self, secret):
        res = single_trace_attack(secret, q=Q, noise_sigma=0.4, seed=1, iterations=20)
        assert res.success
        assert res.n_correct == 16

    def test_single_trace_fails_high_noise(self, secret):
        res = single_trace_attack(secret, q=Q, noise_sigma=4.0, seed=1, iterations=10)
        assert not res.success

    def test_multi_trace_fusion_extends_noise_range(self, model, secret):
        sigma = 1.0
        rng = np.random.default_rng(7)
        traces = model.leak_many(secret, 8, sigma, rng)
        rec, _ = model.attack(traces, sigma, iterations=25)
        assert np.array_equal(rec, np.array(secret) % Q)

    def test_trace_length_validated(self, model):
        with pytest.raises(ValueError):
            model.attack(np.zeros(5), noise_sigma=1.0)

    def test_input_length_validated(self, model):
        with pytest.raises(ValueError):
            model.execute([1, 2, 3])

    def test_bad_n_rejected(self):
        with pytest.raises(ValueError):
            NttSasca(n=3, q=Q)
