"""The unified Distinguisher protocol and its five implementations."""

import numpy as np
import pytest

from repro.attack.config import AttackConfig, KNOWN_DISTINGUISHERS
from repro.attack.cpa import CpaResult, run_cpa
from repro.attack.distinguisher import (
    DISTINGUISHERS,
    CpaDistinguisher,
    MlDistinguisher,
    ScoreResult,
    SecondOrderDistinguisher,
    StrawmanDistinguisher,
    TemplateDistinguisher,
    make_distinguisher,
    profile_distinguisher,
)
from repro.falcon.keygen import keygen
from repro.falcon.params import FalconParams
from repro.leakage.capture import CaptureCampaign
from repro.leakage.device import DeviceModel


@pytest.fixture(scope="module")
def campaign():
    sk, _ = keygen(FalconParams.get(8), seed=b"distinguisher-tests")
    return CaptureCampaign(
        sk=sk, device=DeviceModel(noise_sigma=2.0, seed=23), n_traces=500, seed=43
    )


@pytest.fixture(scope="module")
def exp_problem(campaign):
    """An exact-hypothesis scoring problem with known ground truth."""
    from repro.attack.hypotheses import hyp_exp_sum

    ts = campaign.capture(0)
    seg = ts.segments[0]
    guesses = np.arange(963, 1084, dtype=np.uint64)
    hyp = hyp_exp_sum(seg.known_y, guesses)
    window = seg.traces[:, ts.layout.slice_of("exp_sum")]
    true_exp = (ts.true_secret >> 52) & 0x7FF
    return hyp, window, guesses, true_exp


class TestRegistry:
    def test_registry_matches_config_contract(self):
        assert set(DISTINGUISHERS) == set(KNOWN_DISTINGUISHERS)

    def test_make_by_name(self):
        for name in KNOWN_DISTINGUISHERS:
            dist = make_distinguisher(name, chunk_rows=64)
            assert dist.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown distinguisher"):
            make_distinguisher("sasca-but-wrong")
        with pytest.raises(ValueError, match="unknown distinguisher"):
            AttackConfig(distinguisher="sasca-but-wrong")

    def test_profiling_knobs_validated(self):
        with pytest.raises(ValueError):
            AttackConfig(profiling_traces=0)
        with pytest.raises(ValueError):
            AttackConfig(profiling_targets=0)


class TestCpaDistinguisher:
    def test_matches_run_cpa_exactly(self, exp_problem):
        hyp, window, guesses, _ = exp_problem
        ref = run_cpa(hyp, window, guesses)
        res = CpaDistinguisher().score(hyp, window, guesses, label="exp_sum")
        assert isinstance(res, CpaResult)
        np.testing.assert_array_equal(res.corr, ref.corr)
        assert res.best_guess == ref.best_guess

    def test_satisfies_score_result_protocol(self, exp_problem):
        hyp, window, guesses, _ = exp_problem
        res = CpaDistinguisher(chunk_rows=128).score(hyp, window, guesses)
        assert isinstance(res, ScoreResult)
        assert res.ranking.shape == guesses.shape

    def test_strawman_is_cpa(self, exp_problem):
        hyp, window, guesses, _ = exp_problem
        a = CpaDistinguisher().score(hyp, window, guesses)
        b = StrawmanDistinguisher().score(hyp, window, guesses, exact=False)
        np.testing.assert_array_equal(a.scores, b.scores)


class TestProfiledDistinguishers:
    @pytest.fixture(scope="class")
    def fitted_template(self, campaign):
        cfg = AttackConfig(
            distinguisher="template", profiling_traces=800, profiling_targets=3
        )
        return profile_distinguisher(make_distinguisher("template"), campaign, cfg)

    def test_profiling_covers_engine_labels(self, fitted_template):
        from repro.attack.distinguisher import ENGINE_PROFILED_LABELS

        assert set(fitted_template.fitted_labels) == set(ENGINE_PROFILED_LABELS)

    def test_template_finds_true_exponent(self, fitted_template, exp_problem):
        hyp, window, guesses, true_exp = exp_problem
        res = fitted_template.score(hyp, window, guesses, label="exp_sum")
        assert res.best_guess == true_exp

    def test_unfitted_label_raises(self, exp_problem):
        hyp, window, guesses, _ = exp_problem
        with pytest.raises(ValueError, match="not profiled"):
            TemplateDistinguisher().score(hyp, window, guesses, label="exp_sum")

    def test_inexact_hypotheses_fall_back_to_cpa(self, fitted_template, exp_problem):
        hyp, window, guesses, _ = exp_problem
        fallback = fitted_template.score(
            hyp, window, guesses, label="p_ll", exact=False
        )
        ref = run_cpa(hyp, window, guesses)
        np.testing.assert_array_equal(fallback.scores, ref.scores)

    def test_chunked_scoring_matches_one_shot(self, fitted_template, exp_problem):
        hyp, window, guesses, _ = exp_problem
        one_shot = fitted_template.score(hyp, window, guesses, label="exp_sum").scores
        chunked = TemplateDistinguisher(chunk_rows=77)
        chunked._models = fitted_template._models
        streamed = chunked.score(hyp, window, guesses, label="exp_sum").scores
        np.testing.assert_allclose(streamed, one_shot, rtol=1e-12)

    def test_mlp_distinguisher_scores_exact_step(self):
        # The MLP's softmax calibration is much weaker than Gaussian
        # templates on a 1-sample window, so give it a quieter device
        # than the shared campaign.
        from repro.attack.hypotheses import hyp_exp_sum

        sk, _ = keygen(FalconParams.get(8), seed=b"mlp-tests")
        quiet = CaptureCampaign(
            sk=sk, device=DeviceModel(noise_sigma=0.5, seed=29), n_traces=500, seed=47
        )
        cfg = AttackConfig(
            distinguisher="mlp", profiling_traces=1200, profiling_targets=3
        )
        dist = profile_distinguisher(
            MlDistinguisher(epochs=60), quiet, cfg, labels=("exp_sum",)
        )
        ts = quiet.capture(0)
        seg = ts.segments[0]
        guesses = np.arange(963, 1084, dtype=np.uint64)
        hyp = hyp_exp_sum(seg.known_y, guesses)
        window = seg.traces[:, ts.layout.slice_of("exp_sum")]
        true_exp = (ts.true_secret >> 52) & 0x7FF
        res = dist.score(hyp, window, guesses, label="exp_sum")
        top = [int(guesses[i]) for i in res.ranking[:5]]
        assert true_exp in top


class TestSecondOrderDistinguisher:
    def test_requires_share_pairs(self):
        dist = SecondOrderDistinguisher()
        with pytest.raises(ValueError, match="share pairs"):
            dist.score(np.zeros((10, 2)), np.zeros((10, 3)), np.array([0, 1]))

    def test_streaming_matches_one_shot(self):
        rng = np.random.default_rng(11)
        d = 400
        hw = rng.integers(0, 17, d).astype(np.float64)
        mask_hw = rng.normal(0, 1, d)
        share1 = (hw - mask_hw)[:, None] + rng.normal(0, 0.5, (d, 1))
        share2 = mask_hw[:, None] + rng.normal(0, 0.5, (d, 1))
        hyp = np.stack([hw, rng.permutation(hw)], axis=1)
        window = np.concatenate([share1, share2], axis=1)
        guesses = np.array([0, 1])
        one = SecondOrderDistinguisher().score(hyp, window, guesses)
        streamed = SecondOrderDistinguisher(chunk_rows=59).score(hyp, window, guesses)
        np.testing.assert_allclose(streamed.corr, one.corr, rtol=1e-10)
        assert isinstance(streamed, CpaResult)


class TestEngineIntegration:
    def test_recover_coefficient_same_for_default_and_explicit_cpa(self, campaign):
        from repro.attack.coefficient import recover_coefficient

        ts = campaign.capture(1)
        cfg = AttackConfig()
        a = recover_coefficient(ts, cfg)
        b = recover_coefficient(ts, cfg, distinguisher=CpaDistinguisher())
        assert a.pattern == b.pattern

    def test_template_coefficient_recovery(self):
        # End-to-end through the profiled path. Everything is seeded, so
        # this is a deterministic regression; the quieter device keeps
        # the 500-trace budget comfortably above the success threshold.
        from repro.attack.coefficient import recover_coefficient

        sk, _ = keygen(FalconParams.get(8), seed=b"template-rec-tests")
        quiet = CaptureCampaign(
            sk=sk, device=DeviceModel(noise_sigma=1.0, seed=13), n_traces=600, seed=53
        )
        cfg = AttackConfig(
            distinguisher="template", profiling_traces=800, profiling_targets=3
        )
        dist = profile_distinguisher(make_distinguisher("template"), quiet, cfg)
        rec = recover_coefficient(quiet.capture(0), cfg, distinguisher=dist)
        assert rec.correct

    def test_second_order_engine_selection_fails_informatively(self, campaign):
        from repro.attack.key_recovery import recover_coefficients

        cfg = AttackConfig(distinguisher="second-order")
        # Unmasked captures carry no share pairs: every per-step window
        # has an odd/selected sample layout the combiner must reject
        # rather than silently correlate.
        with pytest.raises(ValueError, match="share pairs"):
            recover_coefficients(campaign, cfg)
