"""Tests for the perf regression gate (scripts/check_bench_regression.py)."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "check_bench_regression.py"
_spec = importlib.util.spec_from_file_location("check_bench_regression", _SCRIPT)
gate = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_bench_regression", gate)
_spec.loader.exec_module(gate)


def bench_payload(name="e2e", wall_s=10.0, traces_per_s=5000.0):
    return {
        "name": name,
        "params": {"n": 8, "n_traces": 6000},
        "wall_s": wall_s,
        "per_stage_s": {"coefficients": wall_s * 0.9},
        "traces_per_s": traces_per_s,
        "peak_rss_mb": 300.0,
    }


def write_bench(directory: Path, payload: dict) -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{payload['name']}.json"
    path.write_text(json.dumps(payload))
    return path


@pytest.fixture
def dirs(tmp_path):
    return tmp_path / "baseline", tmp_path / "current"


class TestGate:
    def test_injected_2x_slowdown_fails(self, dirs):
        baseline, current = dirs
        write_bench(baseline, bench_payload(wall_s=10.0, traces_per_s=5000.0))
        write_bench(current, bench_payload(wall_s=20.0, traces_per_s=2500.0))
        assert gate.main(["--baseline", str(baseline), "--current", str(current)]) == 1

    def test_within_threshold_passes(self, dirs):
        baseline, current = dirs
        write_bench(baseline, bench_payload(wall_s=10.0, traces_per_s=5000.0))
        write_bench(current, bench_payload(wall_s=12.0, traces_per_s=4200.0))
        assert gate.main(["--baseline", str(baseline), "--current", str(current)]) == 0

    def test_improvement_passes(self, dirs):
        baseline, current = dirs
        write_bench(baseline, bench_payload(wall_s=10.0))
        write_bench(current, bench_payload(wall_s=4.0, traces_per_s=9000.0))
        assert gate.main(["--baseline", str(baseline), "--current", str(current)]) == 0

    def test_missing_baseline_dir_passes(self, dirs):
        baseline, current = dirs
        write_bench(current, bench_payload())
        assert gate.main(["--baseline", str(baseline), "--current", str(current)]) == 0

    def test_missing_baseline_file_passes(self, dirs):
        baseline, current = dirs
        write_bench(baseline, bench_payload(name="other"))
        write_bench(current, bench_payload(name="e2e"))
        assert gate.main(["--baseline", str(baseline), "--current", str(current)]) == 0

    def test_no_artifacts_passes(self, dirs):
        baseline, current = dirs
        current.mkdir()
        assert gate.main(["--baseline", str(baseline), "--current", str(current)]) == 0

    def test_torn_current_artifact_fails(self, dirs):
        baseline, current = dirs
        write_bench(baseline, bench_payload())
        current.mkdir()
        (current / "BENCH_e2e.json").write_text('{"name": "e2e", "wal')
        assert gate.main(["--baseline", str(baseline), "--current", str(current)]) == 1

    def test_schema_drift_fails(self, dirs):
        baseline, current = dirs
        write_bench(baseline, bench_payload())
        payload = bench_payload()
        del payload["per_stage_s"]
        write_bench(current, payload)
        assert gate.main(["--baseline", str(baseline), "--current", str(current)]) == 1

    def test_custom_threshold(self, dirs):
        baseline, current = dirs
        write_bench(baseline, bench_payload(wall_s=10.0))
        write_bench(current, bench_payload(wall_s=11.5))
        assert gate.main(
            ["--baseline", str(baseline), "--current", str(current), "--threshold", "0.10"]
        ) == 1

    def test_compare_unit(self):
        base = bench_payload(wall_s=10.0, traces_per_s=1000.0)
        assert gate.compare(base, bench_payload(wall_s=12.6, traces_per_s=1000.0), 0.25)
        assert gate.compare(base, bench_payload(wall_s=10.0, traces_per_s=740.0), 0.25)
        assert not gate.compare(base, bench_payload(wall_s=12.4, traces_per_s=760.0), 0.25)

    def test_capture_backends_block_gated(self):
        """The per-backend capture throughput block regresses like any
        other rate metric, but only for backends present in both
        artifacts — and legacy artifacts without the block still pass."""
        def with_backends(fast, ref=120_000.0):
            payload = bench_payload(name="throughput")
            payload["capture_backends"] = {
                "numpy-batch": {"n_values": 200_000, "traces_per_s": fast},
                "python-ref": {"n_values": 4_000, "traces_per_s": ref},
            }
            return payload

        base = with_backends(7.4e6)
        assert gate.compare(base, with_backends(7.0e6), 0.25) == []
        problems = gate.compare(base, with_backends(3.0e6), 0.25)
        assert len(problems) == 1
        assert "capture_backends[numpy-batch]" in problems[0]
        # both rates down: both named
        assert len(gate.compare(base, with_backends(3.0e6, 60_000.0), 0.25)) == 2
        # a backend dropped from (or absent in) either side is not a failure
        dropped = with_backends(7.4e6)
        del dropped["capture_backends"]["numpy-batch"]
        assert gate.compare(base, dropped, 0.25) == []
        legacy = bench_payload(name="throughput")
        assert gate.compare(legacy, with_backends(7.4e6), 0.25) == []
        assert gate.compare(with_backends(7.4e6), legacy, 0.25) == []

    def test_targets_block_gated(self):
        """Per-surface attack throughput is gated key-by-key like the
        capture-backend block: a surface present in both artifacts must
        not slow down, while adding or dropping a surface passes."""
        def with_targets(fpr, samplerz=50_000.0):
            payload = bench_payload(name="throughput")
            payload["targets"] = {
                "fpr-mul": {"n_targets": 8, "traces_per_s": fpr},
                "samplerz": {"n_targets": 16, "traces_per_s": samplerz},
            }
            return payload

        base = with_targets(20_000.0)
        assert gate.compare(base, with_targets(18_000.0), 0.25) == []
        problems = gate.compare(base, with_targets(9_000.0), 0.25)
        assert len(problems) == 1
        assert "targets[fpr-mul]" in problems[0]
        # both surfaces down: both named
        assert len(gate.compare(base, with_targets(9_000.0, 20_000.0), 0.25)) == 2
        # a surface dropped from (or absent in) either side is not a failure
        dropped = with_targets(20_000.0)
        del dropped["targets"]["samplerz"]
        assert gate.compare(base, dropped, 0.25) == []
        legacy = bench_payload(name="throughput")
        assert gate.compare(legacy, with_targets(20_000.0), 0.25) == []
        assert gate.compare(with_targets(20_000.0), legacy, 0.25) == []

    def test_both_blocks_gated_independently(self):
        payload = bench_payload(name="throughput")
        payload["capture_backends"] = {"numpy-batch": {"traces_per_s": 7.4e6}}
        payload["targets"] = {"samplerz": {"traces_per_s": 50_000.0}}
        slow = bench_payload(name="throughput")
        slow["capture_backends"] = {"numpy-batch": {"traces_per_s": 3.0e6}}
        slow["targets"] = {"samplerz": {"traces_per_s": 10_000.0}}
        problems = gate.compare(payload, slow, 0.25)
        assert len(problems) == 2
        assert any("capture_backends[numpy-batch]" in p for p in problems)
        assert any("targets[samplerz]" in p for p in problems)
