"""Tests for the perf regression gate (scripts/check_bench_regression.py)."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "check_bench_regression.py"
_spec = importlib.util.spec_from_file_location("check_bench_regression", _SCRIPT)
gate = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_bench_regression", gate)
_spec.loader.exec_module(gate)


def bench_payload(name="e2e", wall_s=10.0, traces_per_s=5000.0):
    return {
        "name": name,
        "params": {"n": 8, "n_traces": 6000},
        "wall_s": wall_s,
        "per_stage_s": {"coefficients": wall_s * 0.9},
        "traces_per_s": traces_per_s,
        "peak_rss_mb": 300.0,
    }


def write_bench(directory: Path, payload: dict) -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{payload['name']}.json"
    path.write_text(json.dumps(payload))
    return path


@pytest.fixture
def dirs(tmp_path):
    return tmp_path / "baseline", tmp_path / "current"


class TestGate:
    def test_injected_2x_slowdown_fails(self, dirs):
        baseline, current = dirs
        write_bench(baseline, bench_payload(wall_s=10.0, traces_per_s=5000.0))
        write_bench(current, bench_payload(wall_s=20.0, traces_per_s=2500.0))
        assert gate.main(["--baseline", str(baseline), "--current", str(current)]) == 1

    def test_within_threshold_passes(self, dirs):
        baseline, current = dirs
        write_bench(baseline, bench_payload(wall_s=10.0, traces_per_s=5000.0))
        write_bench(current, bench_payload(wall_s=12.0, traces_per_s=4200.0))
        assert gate.main(["--baseline", str(baseline), "--current", str(current)]) == 0

    def test_improvement_passes(self, dirs):
        baseline, current = dirs
        write_bench(baseline, bench_payload(wall_s=10.0))
        write_bench(current, bench_payload(wall_s=4.0, traces_per_s=9000.0))
        assert gate.main(["--baseline", str(baseline), "--current", str(current)]) == 0

    def test_missing_baseline_dir_passes(self, dirs):
        baseline, current = dirs
        write_bench(current, bench_payload())
        assert gate.main(["--baseline", str(baseline), "--current", str(current)]) == 0

    def test_missing_baseline_file_passes(self, dirs):
        baseline, current = dirs
        write_bench(baseline, bench_payload(name="other"))
        write_bench(current, bench_payload(name="e2e"))
        assert gate.main(["--baseline", str(baseline), "--current", str(current)]) == 0

    def test_no_artifacts_passes(self, dirs):
        baseline, current = dirs
        current.mkdir()
        assert gate.main(["--baseline", str(baseline), "--current", str(current)]) == 0

    def test_torn_current_artifact_fails(self, dirs):
        baseline, current = dirs
        write_bench(baseline, bench_payload())
        current.mkdir()
        (current / "BENCH_e2e.json").write_text('{"name": "e2e", "wal')
        assert gate.main(["--baseline", str(baseline), "--current", str(current)]) == 1

    def test_schema_drift_fails(self, dirs):
        baseline, current = dirs
        write_bench(baseline, bench_payload())
        payload = bench_payload()
        del payload["per_stage_s"]
        write_bench(current, payload)
        assert gate.main(["--baseline", str(baseline), "--current", str(current)]) == 1

    def test_custom_threshold(self, dirs):
        baseline, current = dirs
        write_bench(baseline, bench_payload(wall_s=10.0))
        write_bench(current, bench_payload(wall_s=11.5))
        assert gate.main(
            ["--baseline", str(baseline), "--current", str(current), "--threshold", "0.10"]
        ) == 1

    def test_compare_unit(self):
        base = bench_payload(wall_s=10.0, traces_per_s=1000.0)
        assert gate.compare(base, bench_payload(wall_s=12.6, traces_per_s=1000.0), 0.25)
        assert gate.compare(base, bench_payload(wall_s=10.0, traces_per_s=740.0), 0.25)
        assert not gate.compare(base, bench_payload(wall_s=12.4, traces_per_s=760.0), 0.25)
