"""Tests for static trace realignment under acquisition jitter."""

import numpy as np
import pytest

from repro.attack.alignment import align_traces, align_traceset
from repro.attack.hypotheses import hyp_product, known_limbs
from repro.attack.cpa import run_cpa
from repro.falcon import FalconParams, keygen
from repro.leakage import CaptureCampaign, DeviceModel


def test_align_recovers_known_shifts():
    rng = np.random.default_rng(0)
    base = np.zeros(40)
    base[10:20] = np.linspace(0, 8, 10)
    traces = []
    shifts = rng.integers(-3, 4, 50)
    for s in shifts:
        traces.append(np.roll(base + rng.normal(0, 0.2, 40), s))
    aligned, report = align_traces(np.array(traces), max_shift=3)
    # after alignment the column variance collapses near the pattern
    assert aligned.std(axis=0).max() < np.array(traces).std(axis=0).max()
    assert report.max_shift <= 3
    assert report.n_shifted > 0


def test_alignment_restores_cpa():
    """A jittery device degrades CPA; alignment restores it."""
    sk, _ = keygen(FalconParams.get(8), seed=b"align")
    device = DeviceModel(noise_sigma=4.0, samples_per_step=3, jitter=2, seed=11)
    ts = CaptureCampaign(sk=sk, n_traces=3000, device=device, seed=12).capture(0)
    sig = (ts.true_secret & ((1 << 52) - 1)) | (1 << 52)
    true_lo = sig & ((1 << 25) - 1)
    cands = np.array([true_lo], dtype=np.uint64)

    def peak_corr(traceset):
        seg = traceset.segments[0]
        y_lo, _ = known_limbs(seg.known_y)
        hyp = hyp_product(y_lo, cands)
        res = run_cpa(hyp, seg.traces[:, traceset.layout.slice_of("p_ll")], cands)
        return float(res.scores[0])

    before = peak_corr(ts)
    aligned, reports = align_traceset(ts, max_shift=3)
    after = peak_corr(aligned)
    assert after > before
    assert all(r.n_shifted > 0 for r in reports)
    assert aligned.true_secret == ts.true_secret


def test_aligned_copy_does_not_mutate_original():
    sk, _ = keygen(FalconParams.get(8), seed=b"align2")
    device = DeviceModel(jitter=1, seed=13)
    ts = CaptureCampaign(sk=sk, n_traces=100, device=device).capture(1)
    original = ts.segments[0].traces.copy()
    align_traceset(ts)
    np.testing.assert_array_equal(ts.segments[0].traces, original)
