"""Determinism pass (DT001-DT003) fixtures with exact rule/line pins."""

from __future__ import annotations

from tests.sast_util import by_rule, findings_for, line_of


def test_unseeded_stdlib_random(tmp_path):
    src = """\
    import random

    def draw():
        return random.random()
    """
    findings = findings_for(tmp_path, {"draw.py": src})
    dt = by_rule(findings, "DT001")
    assert [f.line for f in dt] == [line_of(src, "random.random()")]


def test_utils_rng_module_is_exempt(tmp_path):
    src = """\
    import os

    def entropy():
        return os.urandom(32)
    """
    findings = findings_for(tmp_path / "a", {"utils/rng.py": src})
    assert by_rule(findings, "DT001") == []
    # the same code elsewhere is a finding
    findings = findings_for(tmp_path / "b", {"elsewhere.py": src})
    assert len(by_rule(findings, "DT001")) == 1


def test_legacy_numpy_random_and_seedless_default_rng(tmp_path):
    src = """\
    import numpy as np

    def bad():
        a = np.random.normal(0, 1)
        b = np.random.default_rng()
        return a, b

    def good(seed):
        return np.random.default_rng(seed)
    """
    findings = findings_for(tmp_path, {"nprng.py": src})
    lines = sorted(f.line for f in by_rule(findings, "DT001"))
    assert lines == [
        line_of(src, "np.random.normal"),
        line_of(src, "np.random.default_rng()"),
    ]


def test_wall_clock_flagged_outside_obs(tmp_path):
    src = """\
    import time

    def stamp():
        return time.time()
    """
    findings = findings_for(tmp_path / "a", {"pipeline.py": src})
    assert [f.line for f in by_rule(findings, "DT002")] == [line_of(src, "time.time()")]
    # the telemetry layer owns timestamps
    findings = findings_for(tmp_path / "b", {"obs/journal.py": src})
    assert by_rule(findings, "DT002") == []


def test_perf_counter_is_fine(tmp_path):
    src = """\
    import time

    def elapsed():
        t0 = time.perf_counter()
        return time.perf_counter() - t0
    """
    findings = findings_for(tmp_path, {"timing.py": src})
    assert by_rule(findings, "DT002") == []


def test_unordered_iteration_into_digest(tmp_path):
    src = """\
    import hashlib

    def manifest_digest(entries):
        h = hashlib.sha256()
        for key in entries.keys():
            h.update(str(key).encode())
        return h.hexdigest()

    def stable_digest(entries):
        h = hashlib.sha256()
        for key in sorted(entries.keys()):
            h.update(str(key).encode())
        return h.hexdigest()

    def plain_collect(entries):
        out = []
        for key in entries.keys():
            out.append(key)
        return out
    """
    findings = findings_for(tmp_path, {"digest.py": src})
    dt = by_rule(findings, "DT003")
    # only the unsorted iteration inside the digest context fires; the
    # sorted() wrapper and the non-digest function are clean
    assert [f.line for f in dt] == [line_of(src, "for key in entries.keys()")]
    assert dt[0].function == "pkg.digest.manifest_digest"
