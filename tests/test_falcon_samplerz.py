"""Statistical tests for SamplerZ (spec structure vs reference sampler)."""

import math

import pytest

from repro.falcon.params import SIGMA_MAX
from repro.falcon.samplerz import (
    RCDT,
    SAMPLERZ_STEP_LABELS,
    base_sampler,
    samplerz,
    samplerz_simple,
    samplerz_trace,
)
from repro.math.gaussian import dgauss_pmf
from repro.utils.rng import ChaCha20Prng


class TestRcdt:
    def test_monotone_decreasing(self):
        assert all(a > b for a, b in zip(RCDT, RCDT[1:]))

    def test_first_entry_probability(self):
        """P(z0 = 0) = rho(0) / sum rho(z) ~ 0.3595 at sigma_max."""
        p_ge_1 = RCDT[0] / 2**72
        rho = [math.exp(-(z * z) / (2 * SIGMA_MAX**2)) for z in range(64)]
        expected = 1 - rho[0] / sum(rho)
        assert p_ge_1 == pytest.approx(expected, abs=1e-12)

    def test_table_is_finite_and_positive(self):
        assert 10 < len(RCDT) < 30
        assert all(v > 0 for v in RCDT)

    def test_base_sampler_distribution(self):
        stats = pytest.importorskip("scipy.stats")
        rng = ChaCha20Prng(b"base")
        n = 8000
        xs = [base_sampler(rng) for _ in range(n)]
        assert min(xs) == 0
        rho = [math.exp(-(z * z) / (2 * SIGMA_MAX**2)) for z in range(20)]
        total = sum(rho)
        support = range(0, 7)
        observed = [sum(1 for x in xs if x == z) for z in support]
        observed.append(n - sum(observed))
        expected = [n * rho[z] / total for z in support]
        expected.append(n - sum(expected))
        chi2, p = stats.chisquare(observed, f_exp=expected)
        assert p > 1e-4, f"base sampler off (chi2={chi2:.1f})"


class TestSamplerZ:
    SIGMIN = 1.2778336969128337

    def test_deterministic(self):
        a = [samplerz(0.3, 1.5, self.SIGMIN, ChaCha20Prng(b"z")) for _ in range(10)]
        b = [samplerz(0.3, 1.5, self.SIGMIN, ChaCha20Prng(b"z")) for _ in range(10)]
        assert a == b

    def test_sigma_out_of_range(self):
        rng = ChaCha20Prng(b"r")
        with pytest.raises(ValueError):
            samplerz(0.0, 5.0, self.SIGMIN, rng)
        with pytest.raises(ValueError):
            samplerz(0.0, 1.0, self.SIGMIN, rng)

    @pytest.mark.parametrize("mu,sigma", [(0.0, 1.5), (3.7, 1.29), (-11.25, 1.8), (0.5, 1.4)])
    def test_matches_reference_sampler(self, mu, sigma):
        """Chi-square: spec-structure sampler vs exact rejection sampler pmf."""
        stats = pytest.importorskip("scipy.stats")
        rng = ChaCha20Prng(f"sz-{mu}-{sigma}".encode())
        n = 5000
        xs = [samplerz(mu, sigma, self.SIGMIN, rng) for _ in range(n)]
        center = round(mu)
        support = list(range(center - 5, center + 6))
        observed = [sum(1 for x in xs if x == z) for z in support]
        tail_obs = n - sum(observed)
        expected = [n * dgauss_pmf(z, mu, sigma) for z in support]
        tail_exp = n - sum(expected)
        if tail_exp >= 5:
            observed.append(tail_obs)
            expected.append(tail_exp)
        else:
            observed[-1] += tail_obs
            expected[-1] += tail_exp
        chi2, p = stats.chisquare(observed, f_exp=expected)
        assert p > 1e-4, f"samplerz deviates at mu={mu}, sigma={sigma} (chi2={chi2:.1f}, p={p:.1e})"

    def test_mean_tracks_center(self):
        rng = ChaCha20Prng(b"mean")
        mu, sigma, n = 7.25, 1.6, 4000
        xs = [samplerz(mu, sigma, self.SIGMIN, rng) for _ in range(n)]
        assert sum(xs) / n == pytest.approx(mu, abs=5 * sigma / math.sqrt(n))

    def test_simple_sampler_agrees(self):
        rng = ChaCha20Prng(b"simple")
        xs = [samplerz_simple(0.0, 1.7, rng) for _ in range(2000)]
        mean = sum(xs) / len(xs)
        assert abs(mean) < 0.2

    @pytest.mark.parametrize("mu,sigma", [(0.0, 1.5), (2.3, 1.31), (-4.75, 1.7)])
    def test_simple_sampler_matches_pmf(self, mu, sigma):
        """Chi-square: the didactic CDT sampler against the exact pmf."""
        stats = pytest.importorskip("scipy.stats")
        rng = ChaCha20Prng(f"szs-{mu}-{sigma}".encode())
        n = 5000
        xs = [samplerz_simple(mu, sigma, rng) for _ in range(n)]
        center = round(mu)
        support = list(range(center - 5, center + 6))
        observed = [sum(1 for x in xs if x == z) for z in support]
        observed.append(n - sum(observed))
        expected = [n * dgauss_pmf(z, mu, sigma) for z in support]
        expected.append(n - sum(expected))
        chi2, p = stats.chisquare(observed, f_exp=expected)
        assert p > 1e-4, f"samplerz_simple deviates at mu={mu}, sigma={sigma} (chi2={chi2:.1f})"


class TestSamplerZTrace:
    SIGMIN = TestSamplerZ.SIGMIN

    def test_stream_equivalent_to_plain_sampler(self):
        """The instrumented hook consumes the identical RNG stream, so a
        seeded stream of traced calls reproduces the plain sampler."""
        for seed in (b"z", b"trace", b"stream-eq"):
            plain_rng, trace_rng = ChaCha20Prng(seed), ChaCha20Prng(seed)
            for _ in range(50):
                z = samplerz(0.3, 1.5, self.SIGMIN, plain_rng)
                tr = samplerz_trace(0.3, 1.5, self.SIGMIN, trace_rng)
                assert tr.result == z

    def test_rejection_counts_deterministic(self):
        def iter_counts():
            rng = ChaCha20Prng(b"iters")
            return [samplerz_trace(1.7, 1.4, self.SIGMIN, rng).iters for _ in range(40)]

        iters_a, iters_b = iter_counts(), iter_counts()
        assert iters_a == iters_b
        assert all(it >= 1 for it in iters_a)
        assert max(iters_a) > 1, "a 40-draw run should reject at least once"

    def test_step_layout_and_thermometer_code(self):
        rng = ChaCha20Prng(b"layout")
        for _ in range(30):
            tr = samplerz_trace(-0.6, 1.6, self.SIGMIN, rng)
            assert tuple(tr.labels) == SAMPLERZ_STEP_LABELS
            z0 = tr.value("z0")
            # the RCDT walk is a thermometer code: u < RCDT[i] exactly
            # for the first z0 comparisons (RCDT is strictly decreasing)
            cmps = [tr.value(f"cmp_{i:02d}") for i in range(len(RCDT))]
            assert cmps == [1 if i < z0 else 0 for i in range(len(RCDT))]
            b = tr.value("b")
            assert b in (0, 1)
            assert tr.z == b + (2 * b - 1) * z0
            assert tr.value("z_val") == tr.z & (2**64 - 1)
            assert tr.value("iters") == tr.iters
