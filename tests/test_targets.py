"""Tests for the pluggable leakage-surface layer (:mod:`repro.targets`).

Two concerns live here. First, **byte-identity of the refactor**: the
``fpr-mul`` surface must front the pre-protocol pipeline without
changing a single byte of its output — pinned SHA-256 digests of a
traceset, a materialized store, and a full attack report enforce that
(recorded on the commit that introduced the surface layer; any
deliberate change to capture or recovery must re-pin them consciously).
Second, **the samplerz surface end to end**: seeded signing captures,
transcript recovery through the surface-agnostic engine, store
round-trips that preserve the surface's trace layout, and the shared
unknown-name error contract for every registry.
"""

import hashlib
import json
import os

import numpy as np
import pytest

from repro.falcon import FalconParams, keygen
from repro.falcon.samplerz import SAMPLERZ_STEP_LABELS
from repro.leakage import CampaignStore, CaptureCampaign, DeviceModel, capture_coefficient
from repro.targets import DEFAULT_TARGET, TARGET_NAMES, TARGETS, TargetPoint, get_target


@pytest.fixture(scope="module")
def victim():
    sk, pk = keygen(FalconParams.get(8), seed=b"pin-target")
    return sk, pk


def _traceset_digest(ts) -> str:
    h = hashlib.sha256()
    for seg in ts.segments:
        h.update(seg.name.encode())
        h.update(seg.known_y.tobytes())
        h.update(np.ascontiguousarray(seg.traces).tobytes())
    h.update(json.dumps(ts.meta, sort_keys=True, default=str).encode())
    h.update(str(ts.target_index).encode())
    h.update(str(ts.true_secret).encode())
    return h.hexdigest()


class TestRegistry:
    def test_registered_surfaces(self):
        assert TARGET_NAMES == ("fpr-mul", "samplerz")
        assert DEFAULT_TARGET == "fpr-mul"
        for name, surface in TARGETS.items():
            assert isinstance(surface, TargetPoint)
            assert surface.name == name

    def test_get_target_passes_instances_through(self):
        surface = get_target("samplerz")
        assert get_target(surface) is surface

    def test_unknown_name_error_contract(self):
        """Every registry raises the same shaped message: the offending
        name plus the sorted list of registered names."""
        from repro.attack.config import AttackConfig
        from repro.leakage import get_backend

        with pytest.raises(ValueError) as exc:
            get_target("oscilloscope")
        msg = str(exc.value)
        assert msg.startswith("unknown target 'oscilloscope'")
        assert "'fpr-mul', 'samplerz'" in msg

        with pytest.raises(ValueError, match="unknown capture backend"):
            get_backend("cuda")
        with pytest.raises(ValueError, match="unknown distinguisher"):
            AttackConfig(distinguisher="deep-learning")

    def test_cli_surfaces_registry_error(self, capsys):
        from repro.cli import main

        rc = main([
            "attack", "--sk", "/nonexistent-never-read", "--target", "laser",
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown target 'laser'" in err


class TestFprMulByteIdentity:
    """The refactored pipeline must reproduce pre-surface outputs exactly."""

    TRACESET_SHA256 = "063ce94de5d29953a22a8f256599ae01bbd12d885af9bd91c2ea48796ce255da"
    STORE_SHA256 = "cc1e7c55d75c6699c1ad421aa462ec9200c41b832bcadd019fba94a9e81c884e"

    @pytest.mark.parametrize("backend", ["numpy-batch", "python-ref"])
    def test_traceset_pinned(self, victim, backend):
        sk, _ = victim
        ts = capture_coefficient(
            sk, 1, n_traces=200, device=DeviceModel(), seed=2021, backend=backend
        )
        assert "target" not in ts.meta, "fpr-mul tracesets must stay legacy-shaped"
        assert _traceset_digest(ts) == self.TRACESET_SHA256

    def test_store_pinned(self, victim, tmp_path):
        sk, _ = victim
        campaign = CaptureCampaign(
            sk=sk, device=DeviceModel(), n_traces=64, seed=7, backend="numpy-batch"
        )
        store = campaign.materialize(tmp_path / "store")
        # the manifest records the surface (a new field, excluded from the
        # pin); every shard byte must be identical to the pre-surface layout
        assert store.manifest["target"] == "fpr-mul"
        h = hashlib.sha256()
        for root, _, files in sorted(os.walk(tmp_path / "store")):
            for fname in sorted(files):
                if fname == "manifest.json":
                    continue
                path = os.path.join(root, fname)
                h.update(os.path.relpath(path, tmp_path / "store").encode())
                h.update(open(path, "rb").read())
        assert h.hexdigest() == self.STORE_SHA256

    def test_full_attack_pinned(self, victim):
        from repro.attack import full_attack

        sk, pk = victim
        report = full_attack(
            sk, pk, n_traces=800, device=DeviceModel(noise_sigma=2.0),
            message=b"pin message",
        )
        lines = [
            ln for ln in report.summary().splitlines() if not ln.startswith("  wall clock")
        ]
        assert lines == [
            "FALCON-8 full key extraction with 800 measurements",
            "  trace rows correlated: 12800 (requested 800 signings/coefficient)",
            "  coefficients recovered exactly: 8/8",
            "  secret key f recovered: YES",
            "  forged signature on b'pin message' verifies: YES",
        ]
        patterns = [f"{c.pattern:#018x}" for c in report.key_recovery.coefficients]
        assert patterns == [
            "0xc00e65a5077ef0c8", "0x4045c4454ef00ce2", "0x404dab258f426530",
            "0x40339f04f4e60914", "0xc0409e4835ae3a46", "0x404934383a676082",
            "0x4048d97cf6e3c422", "0xc03dae09e2372e4c",
        ]
        assert report.key_recovery.f == [18, 14, 11, -30, 26, 23, 4, 21]
        assert report.target == "fpr-mul"


class TestSamplerZSurface:
    def test_campaign_shape(self, victim):
        sk, _ = victim
        campaign = CaptureCampaign(
            sk=sk, device=DeviceModel(noise_sigma=2.0), n_traces=200, seed=7,
            target="samplerz",
        )
        # ffSampling draws 2n Gaussians per signing
        assert campaign.n_targets == 2 * sk.params.n
        ts = campaign.capture(3)
        assert ts.meta["target"] == "samplerz"
        assert ts.meta["call_index"] == 3
        assert ts.true_secret is not None
        seg, = ts.segments
        layout = get_target("samplerz").layout(campaign.device)
        assert seg.traces.shape == (200, layout.n_samples)
        assert tuple(layout.labels) == SAMPLERZ_STEP_LABELS

    def test_end_to_end_transcript_recovery(self, victim):
        from repro.attack import full_attack

        sk, pk = victim
        report = full_attack(
            sk, pk, n_traces=600, device=DeviceModel(noise_sigma=2.0), seed=7,
            target="samplerz", message=b"pin message",
        )
        result = report.key_recovery
        assert report.target == "samplerz"
        assert result.succeeded
        assert result.recovered_sk is None and not report.forgery_verifies
        assert report.key_correct
        assert len(result.recovered_values) == 2 * sk.params.n
        assert all(c.correct for c in result.coefficients)
        # the recovered transcript is the ground-truth ffSampling stream
        truth = [c.true_value for c in result.coefficients]
        assert result.recovered_values == truth
        summary = report.summary()
        assert "samplerz transcript extraction" in summary
        assert f"sampler calls recovered exactly: {2 * sk.params.n}/{2 * sk.params.n}" in summary
        assert "ffSampling sampler outputs recovered: YES" in summary

    def test_recovery_margin_positive_and_deterministic(self, victim):
        from repro.attack import AttackConfig

        sk, _ = victim
        campaign = CaptureCampaign(
            sk=sk, device=DeviceModel(noise_sigma=2.0), n_traces=400, seed=11,
            target="samplerz",
        )
        surface = get_target("samplerz")
        ts = campaign.capture(5)
        rec_a = surface.recover(ts, AttackConfig())
        rec_b = surface.recover(campaign.capture(5), AttackConfig())
        assert rec_a == rec_b
        assert rec_a.correct
        assert rec_a.margin > 0.0

    def test_store_round_trip_preserves_layout(self, victim, tmp_path):
        sk, _ = victim
        campaign = CaptureCampaign(
            sk=sk, device=DeviceModel(noise_sigma=2.0), n_traces=64, seed=7,
            target="samplerz",
        )
        store = campaign.materialize(tmp_path / "zstore", targets=[0, 1])
        assert store.target == "samplerz"
        ts = store.capture(1)
        fresh = campaign.capture(1)
        assert ts.meta == fresh.meta
        assert ts.true_secret == fresh.true_secret
        seg, fresh_seg = ts.segments[0], fresh.segments[0]
        np.testing.assert_array_equal(seg.traces, fresh_seg.traces)
        # the shard must carry the surface's own step labels
        shard_meta = json.loads((tmp_path / "zstore" / "target_00001" / "shard.json").read_text())
        assert shard_meta["labels"] == list(SAMPLERZ_STEP_LABELS)

    def test_profiled_distinguisher_rejected(self, victim):
        from repro.attack import AttackConfig, recover_full_key

        sk, pk = victim
        campaign = CaptureCampaign(
            sk=sk, device=DeviceModel(noise_sigma=2.0), n_traces=64, seed=7,
            target="samplerz",
        )
        with pytest.raises(ValueError, match="profiles fpr-mul step leakage"):
            recover_full_key(
                campaign, pk, config=AttackConfig(distinguisher="template")
            )
