"""Tests for the straightforward attack and its false positives (III-B)."""

import numpy as np
import pytest

from repro.attack.strawman import shift_aliases, straightforward_mantissa_attack
from repro.falcon import FalconParams, keygen
from repro.fpr.trace import LOW_BITS
from repro.leakage import capture_coefficient


@pytest.fixture(scope="module")
def traceset():
    sk, _ = keygen(FalconParams.get(8), seed=b"strawman")
    return capture_coefficient(sk, 0, n_traces=4000)


class TestShiftAliases:
    def test_value_first(self):
        assert shift_aliases(12, 25)[0] == 12

    def test_contains_all_shifts(self):
        out = set(shift_aliases(0b1100, 6))
        assert out == {0b1100, 0b110, 0b11, 0b11000, 0b110000}

    def test_odd_value_only_left_shifts(self):
        out = shift_aliases(0b101, 4)
        assert set(out) == {0b101, 0b1010}

    def test_zero(self):
        assert shift_aliases(0, 25) == [0]

    def test_all_within_width(self):
        for v in (1, 77, 0x155555):
            assert all(a < (1 << 25) for a in shift_aliases(v, 25))


class TestStrawmanAttack:
    def test_true_limb_among_tied_top(self, traceset):
        """The correct guess reaches the top — but tied with aliases."""
        sig = (traceset.true_secret & ((1 << 52) - 1)) | (1 << 52)
        true_lo = sig & ((1 << LOW_BITS) - 1)
        guesses = np.unique(
            np.array(
                shift_aliases(true_lo, LOW_BITS)
                + list(np.random.default_rng(0).integers(1, 1 << LOW_BITS, 500)),
                dtype=np.uint64,
            )
        )
        res = straightforward_mantissa_attack(traceset, guesses, true_limb=true_lo)
        assert res.correct_in_tie

    def test_false_positives_are_exact_ties(self, traceset):
        """Fig 4(c): alias correlations are *exactly* equal."""
        sig = (traceset.true_secret & ((1 << 52) - 1)) | (1 << 52)
        true_lo = sig & ((1 << LOW_BITS) - 1)
        aliases = shift_aliases(true_lo, LOW_BITS)
        if len(aliases) < 2:
            pytest.skip("true limb is odd and at the top of the range: no aliases")
        res = straightforward_mantissa_attack(
            traceset, np.array(aliases, dtype=np.uint64), true_limb=true_lo
        )
        assert res.has_false_positives
        assert set(int(g) for g in res.tied_top) == set(aliases)

    def test_alias_hypotheses_identical(self, traceset):
        """Root cause: HW(D*B) == HW(2D*B) for every trace."""
        from repro.attack.hypotheses import hyp_product, known_limbs

        y_lo, _ = known_limbs(traceset.segments[0].known_y)
        d = 0x0012345
        hyp = hyp_product(y_lo, np.array([d, 2 * d], dtype=np.uint64))
        np.testing.assert_array_equal(hyp[:, 0], hyp[:, 1])
