"""Tests for the ladder, extend-and-prune and per-coefficient recovery.

These are the paper's core claims, exercised on simulated traces:
the multiplication phase produces shift-aliased candidates; the addition
phase prunes them; the combination recovers sign, exponent, and the full
52-bit mantissa of a FALCON FFT(f) coefficient.
"""

import numpy as np
import pytest

from repro.attack.coefficient import recover_coefficient
from repro.attack.config import AttackConfig
from repro.attack.extend_prune import prune_candidates, recover_mantissa, refine_limb
from repro.attack.hypotheses import hyp_s_lo
from repro.attack.ladder import LOW_LIMB_STEPS, ladder_limb
from repro.attack.sign_exp import recover_exponent, recover_sign
from repro.falcon import FalconParams, keygen
from repro.fpr.trace import LOW_BITS
from repro.leakage import CaptureCampaign, DeviceModel


@pytest.fixture(scope="module")
def campaign():
    sk, pk = keygen(FalconParams.get(8), seed=b"ep-tests")
    return CaptureCampaign(sk=sk, n_traces=8000, device=DeviceModel(seed=5))


@pytest.fixture(scope="module")
def ts0(campaign):
    return campaign.capture(0)


def true_parts(ts):
    sig = (ts.true_secret & ((1 << 52) - 1)) | (1 << 52)
    return {
        "sign": ts.true_secret >> 63,
        "exp": (ts.true_secret >> 52) & 0x7FF,
        "lo": sig & ((1 << LOW_BITS) - 1),
        "hi": sig >> LOW_BITS,
        "sig": sig,
    }


class TestAttackConfig:
    def test_defaults_valid(self):
        AttackConfig()

    def test_validation(self):
        with pytest.raises(ValueError):
            AttackConfig(window=0)
        with pytest.raises(ValueError):
            AttackConfig(beam=0)
        with pytest.raises(ValueError):
            AttackConfig(prune_keep=0)


class TestLadder:
    def test_stages_cover_all_bits(self, ts0):
        res = ladder_limb(ts0, LOW_LIMB_STEPS, total_bits=LOW_BITS, window=5, beam=16)
        assert res.stages[-1].covered_bits == LOW_BITS
        assert [s.covered_bits for s in res.stages] == [5, 10, 15, 20, 25]

    def test_survivors_within_beam_plus_zero_extensions(self, ts0):
        res = ladder_limb(ts0, LOW_LIMB_STEPS, total_bits=10, window=5, beam=8)
        assert len(res.stages[0].survivors) <= 8 + 1

    def test_true_limb_class_survives(self, ts0):
        """The ladder must keep the true limb or one of its shift aliases."""
        from repro.attack.strawman import shift_aliases

        parts = true_parts(ts0)
        res = ladder_limb(ts0, LOW_LIMB_STEPS, total_bits=LOW_BITS, window=5, beam=32)
        survivors = set(int(c) for c in res.candidates)
        alias_class = set()
        for s in survivors:
            alias_class.update(shift_aliases(s, LOW_BITS))
        assert parts["lo"] in alias_class

    def test_bad_total_bits(self, ts0):
        with pytest.raises(ValueError):
            ladder_limb(ts0, LOW_LIMB_STEPS, total_bits=0)


class TestPrune:
    def test_prune_ranks_truth_over_alias(self, ts0):
        """Fig 4(d): the addition separates D from its shift aliases."""
        parts = true_parts(ts0)
        d = parts["lo"]
        aliases = [d]
        if d * 2 < 1 << LOW_BITS:
            aliases.append(d * 2)
        if d % 2 == 0:
            aliases.append(d // 2)
        cands = np.array(sorted(set(aliases)), dtype=np.uint64)
        scores, results = prune_candidates(ts0, cands, [hyp_s_lo], ["s_lo"], True)
        assert int(cands[int(np.argmax(scores))]) == d
        assert len(results) == 2  # two segments, one step each

    def test_refine_stays_at_truth(self, ts0):
        parts = true_parts(ts0)
        refined, _ = refine_limb(ts0, parts["lo"], LOW_BITS, [hyp_s_lo], ["s_lo"], True)
        assert refined == parts["lo"]

    def test_refine_repairs_single_window_error(self, ts0):
        parts = true_parts(ts0)
        corrupted = parts["lo"] ^ 0b11000  # flip two bits in one window
        refined, _ = refine_limb(ts0, corrupted, LOW_BITS, [hyp_s_lo], ["s_lo"], True)
        assert refined == parts["lo"]


class TestMantissaRecovery:
    def test_recovers_both_limbs(self, ts0):
        parts = true_parts(ts0)
        rec = recover_mantissa(ts0, AttackConfig())
        assert rec.low_limb == parts["lo"]
        assert rec.high_limb == parts["hi"]
        assert rec.significand == parts["sig"]
        assert rec.mantissa_field == parts["sig"] & ((1 << 52) - 1)

    def test_diagnostics_exposed(self, ts0):
        rec = recover_mantissa(ts0, AttackConfig())
        assert len(rec.low.ladder.stages) == 5
        assert len(rec.low.prune_results) >= 1
        assert rec.high.best == rec.high_limb
        assert rec.high_limb >> 27 == 1  # implicit MSB


class TestSignExponent:
    def test_sign_recovered(self, ts0):
        parts = true_parts(ts0)
        rec = recover_sign(ts0)
        assert rec.bit == parts["sign"]
        assert rec.score > 0

    def test_exponent_recovered_or_top8(self, ts0):
        parts = true_parts(ts0)
        sig = parts["sig"]
        rec = recover_exponent(ts0, significand=sig, guess_range=(963, 1084))
        assert parts["exp"] in rec.top_candidates(8)

    def test_exponent_ignores_impossible_range(self, ts0):
        rec = recover_exponent(ts0, guess_range=(1000, 1050))
        assert 1000 <= rec.biased_exponent < 1050


class TestCoefficientRecovery:
    def test_full_coefficient(self, ts0):
        rec = recover_coefficient(ts0, AttackConfig())
        parts = true_parts(ts0)
        # mantissa and sign must be exact; the exponent may need the
        # global repair, but must be in the candidate set
        assert rec.mantissa.mantissa_field == ts0.true_secret & ((1 << 52) - 1)
        assert rec.sign.bit == parts["sign"]
        assert ts0.true_secret in rec.candidate_patterns(12)

    def test_more_noise_needs_more_traces(self, campaign):
        """With 10x the noise, 300 traces are not enough for the mantissa."""
        sk = campaign.sk
        noisy = CaptureCampaign(
            sk=sk, n_traces=300, device=DeviceModel(noise_sigma=120.0, seed=6)
        )
        ts = noisy.capture(0)
        rec = recover_mantissa(ts, AttackConfig())
        assert rec.mantissa_field != ts.true_secret & ((1 << 52) - 1)
