"""Tests for the streaming CPA accumulator."""

import numpy as np
import pytest

from repro.attack.incremental import IncrementalCpa
from repro.utils.stats import batched_pearson


class TestIncrementalCpa:
    def test_matches_batched(self):
        rng = np.random.default_rng(0)
        hyps = rng.integers(0, 50, (500, 7)).astype(np.float64)
        traces = rng.standard_normal((500, 3))
        inc = IncrementalCpa(7, 3)
        for lo in range(0, 500, 130):
            inc.update(hyps[lo : lo + 130], traces[lo : lo + 130])
        np.testing.assert_allclose(
            inc.correlation(), batched_pearson(hyps, traces), atol=1e-12
        )

    def test_single_row_batches(self):
        rng = np.random.default_rng(1)
        hyps = rng.integers(0, 9, (40, 2)).astype(np.float64)
        traces = rng.standard_normal((40, 1))
        inc = IncrementalCpa(2, 1)
        for d in range(40):
            inc.update(hyps[d : d + 1], traces[d : d + 1])
        np.testing.assert_allclose(
            inc.correlation(), batched_pearson(hyps, traces), atol=1e-12
        )

    def test_count_and_threshold(self):
        inc = IncrementalCpa(1, 1)
        inc.update(np.arange(100.0).reshape(-1, 1), np.arange(100.0).reshape(-1, 1))
        assert inc.count == 100
        assert 0 < inc.threshold() < 1
        assert inc.correlation()[0, 0] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            IncrementalCpa(0, 1)
        inc = IncrementalCpa(2, 2)
        with pytest.raises(ValueError):
            inc.update(np.zeros((3, 1)), np.zeros((3, 2)))
        with pytest.raises(ValueError):
            inc.update(np.zeros((3, 2)), np.zeros((4, 2)))
        with pytest.raises(ValueError):
            inc.correlation()

    def test_degenerate_columns_zero(self):
        inc = IncrementalCpa(1, 1)
        inc.update(np.ones((50, 1)), np.random.default_rng(2).standard_normal((50, 1)))
        assert inc.correlation()[0, 0] == 0.0
