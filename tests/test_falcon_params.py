"""Tests for FALCON parameter sets."""

import math

import pytest

from repro.falcon.params import SIGMA_MAX, SUPPORTED_N, FalconParams, Q


class TestStandardSets:
    def test_falcon_512_matches_spec(self):
        p = FalconParams.get(512)
        assert p.q == 12289
        assert p.sigma == pytest.approx(165.736617183, abs=1e-6)
        assert p.sigmin == pytest.approx(1.2778336969128337, abs=1e-10)
        assert p.sig_bound == 34034726
        assert p.sig_bytelen == 666

    def test_falcon_1024_matches_spec(self):
        p = FalconParams.get(1024)
        assert p.sigma == pytest.approx(168.388571447, abs=1e-6)
        assert p.sigmin == pytest.approx(1.298280334344292, abs=1e-9)
        assert p.sig_bound == 70265242
        assert p.sig_bytelen == 1280


class TestDerivedQuantities:
    @pytest.mark.parametrize("n", SUPPORTED_N)
    def test_bound_formula(self, n):
        p = FalconParams.get(n)
        assert p.sig_bound == int((1.1 * p.sigma * math.sqrt(2 * n)) ** 2)

    @pytest.mark.parametrize("n", SUPPORTED_N)
    def test_sigma_in_sampler_range(self, n):
        p = FalconParams.get(n)
        assert 1.0 < p.sigmin < SIGMA_MAX
        assert p.sigma == pytest.approx(p.sigmin * 1.17 * math.sqrt(Q))

    def test_sigma_monotone_in_n(self):
        sigmas = [FalconParams.get(n).sigma for n in SUPPORTED_N]
        assert sigmas == sorted(sigmas)

    def test_sigma_fg(self):
        p = FalconParams.get(512)
        assert p.sigma_fg == pytest.approx(1.17 * math.sqrt(Q / 1024))

    def test_compressed_bits_budget(self):
        p = FalconParams.get(512)
        # spec: 8 * sbytelen - 328 bits for the compressed s2
        assert p.compressed_sig_bits == 8 * 666 - 328

    def test_unsupported_n_rejected(self):
        for n in (0, 1, 7, 48, 2048):
            with pytest.raises(ValueError):
                FalconParams.get(n)

    def test_frozen(self):
        p = FalconParams.get(64)
        with pytest.raises(Exception):
            p.n = 128
