"""Tests for the observability layer: metrics, spans, and the journal.

The load-bearing invariant is parallel/serial equivalence: a campaign
fanned out over a ProcessPoolExecutor must account exactly the same
totals as the serial run, because each worker accumulates into its own
scoped registry and the parent performs the single merge.
"""

import io
import json
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.obs import (
    HistogramSummary,
    MetricsSnapshot,
    RunJournal,
    Span,
    attach,
    collect_spans,
    console_subscriber,
    current_registry,
    detached,
    read_journal,
    scoped_registry,
    span,
)
from repro.obs import metrics as metrics_mod
from repro.obs import spans as spans_mod


@pytest.fixture(autouse=True)
def fresh_obs_state():
    metrics_mod._reset_state()
    spans_mod._reset_state()
    yield
    metrics_mod._reset_state()
    spans_mod._reset_state()


# -- metrics ---------------------------------------------------------------


class TestMetrics:
    def test_counters_gauges_histograms(self):
        with scoped_registry() as reg:
            metrics_mod.inc("a", 2)
            metrics_mod.inc("a")
            metrics_mod.set_gauge("g", 7.5)
            metrics_mod.observe("h", 1.0)
            metrics_mod.observe("h", 3.0)
        snap = reg.snapshot()
        assert snap.counters["a"] == 3
        assert snap.gauges["g"] == 7.5
        assert snap.histograms["h"].count == 2
        assert snap.histograms["h"].mean == 2.0
        assert snap.histograms["h"].min == 1.0
        assert snap.histograms["h"].max == 3.0

    def test_scoped_writes_do_not_leak_to_outer(self):
        outer = current_registry()
        with scoped_registry():
            metrics_mod.inc("scoped.only")
        assert outer.counter("scoped.only") == 0

    def test_snapshot_merge_and_json_round_trip(self):
        a = MetricsSnapshot(
            counters={"c": 1},
            gauges={"g": 1.0},
            histograms={"h": HistogramSummary(1, 2.0, 2.0, 2.0)},
        )
        b = MetricsSnapshot(
            counters={"c": 2, "d": 5},
            gauges={"g": 9.0},
            histograms={"h": HistogramSummary(1, 4.0, 4.0, 4.0)},
        )
        merged = a.merge(b)
        assert merged.counters == {"c": 3, "d": 5}
        assert merged.gauges["g"] == 9.0  # last write wins
        assert merged.histograms["h"].count == 2
        assert merged.histograms["h"].total == 6.0
        back = MetricsSnapshot.from_jsonable(
            json.loads(json.dumps(merged.to_jsonable()))
        )
        assert back.counters == merged.counters
        assert back.histograms["h"].min == 2.0
        assert back.histograms["h"].max == 4.0

    def test_empty_histogram_json_round_trip(self):
        h = HistogramSummary()
        back = HistogramSummary.from_jsonable(h.to_jsonable())
        back.observe(5.0)
        assert back.min == 5.0 and back.max == 5.0


def _scoped_work(args):
    """Worker body for the cross-process equivalence test."""
    k, reps = args
    metrics_mod._reset_state()
    spans_mod._reset_state()
    with scoped_registry() as reg:
        for _ in range(reps):
            metrics_mod.inc("work.items")
            metrics_mod.inc("work.weight", k)
            metrics_mod.observe("work.size", float(k))
    return reg.snapshot()


class TestCrossProcessEquivalence:
    UNITS = [(1, 3), (2, 5), (3, 1), (4, 4)]

    def _serial(self) -> MetricsSnapshot:
        total = MetricsSnapshot()
        for unit in self.UNITS:
            total.merge(_scoped_work(unit))
        return total

    def test_pool_merge_equals_serial(self):
        serial = self._serial()
        parallel = MetricsSnapshot()
        with ProcessPoolExecutor(max_workers=2) as pool:
            for snap in pool.map(_scoped_work, self.UNITS):
                parallel.merge(snap)
        assert parallel.counters == serial.counters
        for name in serial.histograms:
            s, p = serial.histograms[name], parallel.histograms[name]
            assert (p.count, p.total, p.min, p.max) == (s.count, s.total, s.min, s.max)


# -- spans -----------------------------------------------------------------


class TestSpans:
    def test_nesting_reconstructs_stage_tree(self):
        with collect_spans() as roots:
            with span("attack"):
                with span("capture"):
                    pass
                with span("mantissa"):
                    with span("extend", limb="low"):
                        pass
                    with span("prune", limb="low"):
                        pass
                with span("sign"):
                    pass
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "attack"
        assert [c.name for c in root.children] == ["capture", "mantissa", "sign"]
        mant = root.find("mantissa")
        assert [c.name for c in mant.children] == ["extend", "prune"]
        assert root.find("extend").attrs == {"limb": "low"}
        stages = root.stage_seconds()
        assert set(stages) == {"capture", "mantissa", "sign"}
        assert all(v >= 0 for v in stages.values())
        # children's durations are contained in the parent's
        assert mant.duration_s <= root.duration_s

    def test_same_name_children_sum_in_stage_seconds(self):
        with collect_spans() as roots:
            with span("root"):
                with span("step"):
                    pass
                with span("step"):
                    pass
        assert len(roots[0].children) == 2
        assert set(roots[0].stage_seconds()) == {"step"}

    def test_closed_span_feeds_stage_seconds_histogram(self):
        with scoped_registry() as reg:
            with span("prune"):
                pass
        assert reg.snapshot().histograms["stage_seconds.prune"].count == 1

    def test_detached_isolates_and_attach_grafts(self):
        with collect_spans() as roots:
            with span("outer"):
                with detached() as worker_roots:
                    with span("coefficient", target=3):
                        with span("capture"):
                            pass
                # nothing auto-nested under "outer" while detached
                assert len(worker_roots) == 1
                assert worker_roots[0].name == "coefficient"
                for r in worker_roots:
                    attach(r)
        root = roots[0]
        assert [c.name for c in root.children] == ["coefficient"]
        assert root.find("capture") is not None

    def test_span_json_round_trip(self):
        with collect_spans() as roots:
            with span("a", n=8):
                with span("b"):
                    pass
        back = Span.from_jsonable(json.loads(json.dumps(roots[0].to_jsonable())))
        assert back.name == "a"
        assert back.attrs == {"n": 8}
        assert back.children[0].name == "b"
        assert back.duration_s == roots[0].duration_s


# -- journal ---------------------------------------------------------------


class TestJournal:
    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunJournal(path) as journal:
            journal.emit("run_start", n=8, n_traces=np.int64(450))
            journal.emit("custom", payload={"x": np.float64(1.5)})
            with collect_spans() as roots:
                with span("attack"):
                    pass
            journal.emit_span(roots[0])
            snap = MetricsSnapshot(counters={"c": 2.0})
            journal.emit_metrics(snap)
        events = read_journal(path)
        assert [e["event"] for e in events] == ["run_start", "custom", "span", "metrics"]
        assert [e["seq"] for e in events] == [0, 1, 2, 3]
        assert all("ts" in e for e in events)
        assert events[0]["n_traces"] == 450          # numpy scalars flatten
        assert events[2]["span"]["name"] == "attack"
        assert MetricsSnapshot.from_jsonable(events[3]["metrics"]).counters == {"c": 2.0}

    def test_torn_final_line_tolerated(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunJournal(path) as journal:
            journal.emit("one")
            journal.emit("two")
        with open(path, "a") as fh:
            fh.write('{"ts": 1, "seq": 2, "eve')  # crash mid-write
        events = read_journal(path)
        assert [e["event"] for e in events] == ["one", "two"]

    def test_pure_hub_without_path(self):
        seen = []
        journal = RunJournal(None, subscribers=(seen.append,))
        journal.emit("progress", stage="coefficient", completed=1, total=8)
        assert seen[0]["event"] == "progress"
        assert seen[0]["completed"] == 1

    def test_console_subscriber_renders_progress_only(self):
        stream = io.StringIO()
        console_subscriber({"event": "metrics"}, stream=stream)
        assert stream.getvalue() == ""
        console_subscriber(
            {
                "event": "progress",
                "stage": "coefficient",
                "completed": 2,
                "total": 8,
                "record": {
                    "target_index": 5,
                    "elapsed_seconds": 1.25,
                    "n_traces_used": 900,
                    "correct": True,
                    "exponent_margin": 0.5,
                },
            },
            stream=stream,
        )
        line = stream.getvalue()
        assert "coefficient    5" in line
        assert "ok" in line and "traces=900" in line
