"""Tests for the FALCON FFT representation (split/merge, ring ops)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.math import fft, poly

sizes = st.sampled_from([2, 4, 8, 16, 32, 64])


def random_poly(n, seed):
    return np.random.default_rng(seed).standard_normal(n)


class TestRoots:
    @pytest.mark.parametrize("n", [2, 4, 8, 64, 512])
    def test_roots_satisfy_ring_equation(self, n):
        z = fft.roots(n)
        np.testing.assert_allclose(z**n, -1.0, atol=1e-10)

    @pytest.mark.parametrize("n", [2, 8, 64])
    def test_roots_upper_half_plane(self, n):
        assert np.all(fft.roots(n).imag > 0)

    def test_bad_n_rejected(self):
        for n in (0, 1, 3, 12):
            with pytest.raises(ValueError):
                fft.roots(n)


class TestTransform:
    @pytest.mark.parametrize("n", [2, 4, 8, 32, 256, 1024])
    def test_roundtrip(self, n):
        f = random_poly(n, n)
        np.testing.assert_allclose(fft.ifft(fft.fft(f)), f, atol=1e-9)

    @pytest.mark.parametrize("n", [2, 4, 16, 128])
    def test_matches_direct_evaluation(self, n):
        f = random_poly(n, n + 1)
        direct = np.array([np.polyval(f[::-1], z) for z in fft.roots(n)])
        np.testing.assert_allclose(fft.fft(f), direct, atol=1e-8)

    def test_fft_of_constant(self):
        out = fft.fft([3.0, 0.0, 0.0, 0.0])
        np.testing.assert_allclose(out, 3.0)

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            fft.fft([1.0, 2.0, 3.0])

    def test_linearity(self):
        n = 16
        f, g = random_poly(n, 1), random_poly(n, 2)
        np.testing.assert_allclose(
            fft.fft(2 * f + g), 2 * fft.fft(f) + fft.fft(g), atol=1e-9
        )


class TestSplitMerge:
    @pytest.mark.parametrize("n", [4, 8, 64, 512])
    def test_split_merge_roundtrip(self, n):
        F = fft.fft(random_poly(n, n + 7))
        f0, f1 = fft.split_fft(F)
        np.testing.assert_allclose(fft.merge_fft(f0, f1), F, atol=1e-9)

    @pytest.mark.parametrize("n", [4, 16, 64])
    def test_split_matches_coefficient_split(self, n):
        """split_fft(FFT(f)) == (FFT(f_even), FFT(f_odd))."""
        f = random_poly(n, n + 13)
        f0, f1 = fft.split_fft(fft.fft(f))
        np.testing.assert_allclose(f0, fft.fft(f[0::2]), atol=1e-9)
        np.testing.assert_allclose(f1, fft.fft(f[1::2]), atol=1e-9)

    def test_split_of_single_slot_rejected(self):
        with pytest.raises(ValueError):
            fft.split_fft(np.array([1 + 1j]))

    def test_merge_size_mismatch(self):
        with pytest.raises(ValueError):
            fft.merge_fft(np.ones(2, dtype=complex), np.ones(3, dtype=complex))


class TestRingOps:
    @pytest.mark.parametrize("n", [4, 16, 64])
    def test_mul_fft_is_negacyclic_product(self, n):
        rng = np.random.default_rng(n)
        a = list(rng.integers(-30, 30, n))
        b = list(rng.integers(-30, 30, n))
        via_fft = fft.ifft(fft.mul_fft(fft.fft(a), fft.fft(b)))
        np.testing.assert_allclose(via_fft, poly.mul(a, b), atol=1e-6)

    def test_div_inverts_mul(self):
        n = 32
        a = fft.fft(random_poly(n, 3))
        b = fft.fft(random_poly(n, 4) + 5.0)  # keep away from zero slots
        np.testing.assert_allclose(fft.div_fft(fft.mul_fft(a, b), b), a, atol=1e-9)

    @pytest.mark.parametrize("n", [4, 16])
    def test_adj_fft_matches_adjoint_poly(self, n):
        rng = np.random.default_rng(n + 5)
        f = list(rng.integers(-20, 20, n))
        np.testing.assert_allclose(
            fft.adj_fft(fft.fft(f)), fft.fft(poly.adjoint(f)), atol=1e-9
        )

    def test_self_adjoint_is_real(self):
        """f * adj(f) has a real-valued FFT — the ffLDL precondition."""
        n = 32
        F = fft.fft(random_poly(n, 9))
        prod = fft.mul_fft(F, fft.adj_fft(F))
        np.testing.assert_allclose(prod.imag, 0.0, atol=1e-9)
        assert np.all(prod.real >= 0)

    def test_parseval(self):
        """sum |FFT slots|^2 * (2/n) == squared coefficient norm."""
        n = 64
        f = random_poly(n, 11)
        F = fft.fft(f)
        assert (2.0 / n) * np.sum(np.abs(F) ** 2) == pytest.approx(float(f @ f))
