"""Tests for exact integer polynomial arithmetic in Z[x]/(x^n + 1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.math import poly

coeff = st.integers(min_value=-1000, max_value=1000)


def ring_poly(n):
    return st.lists(coeff, min_size=n, max_size=n)


class TestRingBasics:
    def test_check_ring_accepts_powers_of_two(self):
        for n in (1, 2, 4, 64):
            assert poly.check_ring([0] * n) == n

    def test_check_ring_rejects_others(self):
        for n in (0, 3, 6, 12):
            with pytest.raises(ValueError):
                poly.check_ring([0] * n)

    def test_constant(self):
        assert poly.constant(7, 4) == [7, 0, 0, 0]

    @given(ring_poly(8), ring_poly(8))
    def test_add_sub_inverse(self, f, g):
        assert poly.sub(poly.add(f, g), g) == f

    def test_degree_mismatch_rejected(self):
        with pytest.raises(ValueError):
            poly.add([1, 2], [1, 2, 3, 4])
        with pytest.raises(ValueError):
            poly.mul([1, 2], [1, 2, 3, 4])


class TestMul:
    def test_x_times_x_wraps_negacyclically(self):
        # x * x^(n-1) = x^n = -1
        n = 4
        x = [0, 1, 0, 0]
        xn1 = [0, 0, 0, 1]
        assert poly.mul(x, xn1) == [-1, 0, 0, 0]

    def test_identity(self):
        f = [3, -1, 4, 1]
        assert poly.mul(f, poly.constant(1, 4)) == f

    @given(ring_poly(8), ring_poly(8))
    @settings(max_examples=30)
    def test_commutative(self, f, g):
        assert poly.mul(f, g) == poly.mul(g, f)

    @given(ring_poly(8), ring_poly(8), ring_poly(8))
    @settings(max_examples=20)
    def test_distributive(self, f, g, h):
        left = poly.mul(f, poly.add(g, h))
        right = poly.add(poly.mul(f, g), poly.mul(f, h))
        assert left == right

    def test_big_coefficients_exact(self):
        f = [10**50, -(10**49)] + [0] * 2
        g = [3, 10**45, 0, 0]
        out = poly.mul(f, g)
        assert out[1] == 10**95 - 3 * 10**49


class TestAdjointAndConjugate:
    @given(ring_poly(8))
    def test_adjoint_involution(self, f):
        assert poly.adjoint(poly.adjoint(f)) == f

    @given(ring_poly(8))
    def test_galois_involution(self, f):
        assert poly.galois_conjugate(poly.galois_conjugate(f)) == f

    @given(ring_poly(8), ring_poly(8))
    @settings(max_examples=20)
    def test_adjoint_antihomomorphism(self, f, g):
        assert poly.adjoint(poly.mul(f, g)) == poly.mul(poly.adjoint(f), poly.adjoint(g))

    def test_adjoint_degree_one_ring(self):
        assert poly.adjoint([5]) == [5]


class TestSplitMergeNormLift:
    @given(ring_poly(16))
    def test_split_merge_roundtrip(self, f):
        f0, f1 = poly.split(f)
        assert poly.merge(f0, f1) == f

    @given(ring_poly(8), ring_poly(8))
    @settings(max_examples=25)
    def test_field_norm_multiplicative(self, f, g):
        nf_ng = poly.mul(poly.field_norm(f), poly.field_norm(g))
        n_fg = poly.field_norm(poly.mul(f, g))
        assert nf_ng == n_fg

    @given(ring_poly(8))
    def test_field_norm_is_f_times_conjugate(self, f):
        # lift(N(f)) = f(x) * f(-x)
        lifted = poly.lift(poly.field_norm(f))
        direct = poly.mul(f, poly.galois_conjugate(f))
        assert lifted == direct

    @given(ring_poly(8))
    def test_sqnorm(self, f):
        assert poly.sqnorm(f) == sum(c * c for c in f)
        assert poly.sqnorm(f, f) == 2 * sum(c * c for c in f)


class TestModQ:
    Q = 12289

    def test_inverse_mod_q(self):
        f = [1, 2, 3, 4, 0, 0, 0, 1]
        inv = poly.inverse_mod_q(f, self.Q)
        assert poly.mul_mod_q(f, inv, self.Q) == poly.constant(1, 8)

    def test_non_invertible_rejected(self):
        with pytest.raises(ValueError):
            poly.inverse_mod_q([0] * 8, self.Q)

    @given(ring_poly(8))
    @settings(max_examples=20)
    def test_mul_mod_q_matches_exact(self, f):
        g = [5, -3, 2, 0, 0, 7, 1, 1]
        exact = [c % self.Q for c in poly.mul(f, g)]
        assert poly.mul_mod_q(f, g, self.Q) == exact
