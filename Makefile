# Convenience targets for the Falcon-Down reproduction.

PYTHON ?= python3

.PHONY: install test lint sast sast-oracle sast-contract sast-variants typecheck bench bench-smoke demo figures smoke farm-smoke verify clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/ -q

# Ruff is not vendored; the gate is enforced in CI and runs locally
# whenever the tool happens to be installed.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; skipping lint (CI runs it)"; \
	fi

# Zero-dependency static analysis (repro.sast): secret-flow taint with
# interval precision, determinism lint, concurrency/durability lint —
# enforced against the leakage contract's recorded oracle verdicts
# (CT001/CT002/CT003). Works without numpy; uses the warm summary cache.
sast:
	$(PYTHON) -m repro.sast verify src/repro --contract leakage-contract.json \
		--cache .sast-cache.json

# Same gate plus the dynamic taint oracle: fresh differential-replay
# verdicts (CT003/CT004) and declassify liveness inside the coverage
# boundary (CT005). Needs numpy for the workload.
sast-oracle:
	$(PYTHON) -m repro.sast verify src/repro --contract leakage-contract.json --oracle

# Regenerate the contract after an intentional change (runs the oracle,
# carries over reviewed leak classes and reasons by fingerprint).
sast-contract:
	$(PYTHON) -m repro.sast verify src/repro --contract leakage-contract.json \
		--write-contract

# Dynamic CT007 gate: replay each countermeasure variant's workload with
# every module line watched and check the digests against the variant's
# recorded claim (masking: key-independent except the clear boundary;
# constant-time: values stay key-dependent). Needs numpy for keygen.
sast-variants:
	$(PYTHON) -m repro.sast verify src/repro --contract leakage-contract.json \
		--variant masked-mul --oracle
	$(PYTHON) -m repro.sast verify src/repro --contract leakage-contract.json \
		--variant ct-mul --oracle

# Mypy is not vendored; like lint, the gate is enforced in CI and runs
# locally whenever the tool happens to be installed.
typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy --strict src/repro/utils src/repro/obs src/repro/sast src/repro/leakage src/repro/farm src/repro/countermeasures src/repro/sasca; \
	else \
		echo "mypy not installed; skipping typecheck (CI runs it)"; \
	fi

# Full suite at the paper's trace budget. The headline benches emit
# BENCH_*.json perf artifacts (schema in benchmarks/_emit.py); the gate
# compares them against bench-baseline/ and fails on >25% regressions
# (no baseline directory = recording-only run, always passes).
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q -s
	$(PYTHON) -m pytest benchmarks/bench_e2e_key_recovery.py -q -s \
		-k "capture_backend_throughput or streaming_cpa_matches_one_shot"
	$(PYTHON) scripts/check_bench_regression.py --baseline bench-baseline --current .

# CI-sized perf trajectory: the same emitting benches at reduced trace
# counts, then the regression gate. The capture-backend microbench runs
# in the same process as the throughput bench so its measured rates land
# in BENCH_throughput.json's capture_backends block.
bench-smoke:
	FALCON_BENCH_TRACES=6000 FALCON_BENCH_THROUGHPUT_TRACES=800 \
	$(PYTHON) -m pytest benchmarks/bench_e2e_key_recovery.py -q -s \
		-k "e2e_key_recovery_and_forgery or capture_backend_throughput or streaming_cpa_matches_one_shot"
	$(PYTHON) -m pytest benchmarks/bench_sast.py --benchmark-only -q -s
	$(PYTHON) scripts/check_bench_regression.py --baseline bench-baseline --current .

# End-to-end smoke of the moving parts the unit tests mock: the
# 2-worker fan-out, a materialized campaign store, and a checkpointed
# session resume (scripts/e2e_smoke.py). Catches pickling, per-target
# seeding, shard layout, and fingerprint regressions in one run.
# SMOKE_BACKEND selects the capture step-value engine and SMOKE_TARGET
# the leakage surface; CI fans the smoke over both matrices.
SMOKE_BACKEND ?= numpy-batch
SMOKE_TARGET ?= fpr-mul
smoke:
	$(PYTHON) scripts/e2e_smoke.py --backend $(SMOKE_BACKEND) --target $(SMOKE_TARGET)

# Orchestration smoke (scripts/farm_smoke.py): a 2-worker farm drains
# two mixed-target n=8 campaigns end-to-end, one canceled mid-flight
# and resumed from its checkpoints, with every result checked
# bit-identical to a direct full_attack run.
farm-smoke:
	$(PYTHON) scripts/farm_smoke.py

verify: test lint sast typecheck smoke farm-smoke

demo:
	$(PYTHON) examples/attack_demo.py --n 8 --traces 10000

figures:
	$(PYTHON) examples/trace_explorer.py
	$(PYTHON) examples/ntt_vs_fft.py
	$(PYTHON) examples/single_trace_ntt.py

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null || true
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
	rm -f BENCH_*.json .sast-cache.json
