# Convenience targets for the Falcon-Down reproduction.

PYTHON ?= python3

.PHONY: install test bench demo figures clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/ -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q -s

demo:
	$(PYTHON) examples/attack_demo.py --n 8 --traces 10000

figures:
	$(PYTHON) examples/trace_explorer.py
	$(PYTHON) examples/ntt_vs_fft.py
	$(PYTHON) examples/single_trace_ntt.py

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null || true
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
