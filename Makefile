# Convenience targets for the Falcon-Down reproduction.

PYTHON ?= python3

.PHONY: install test bench demo figures verify clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/ -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q -s

# Tier-1 suite plus a 2-worker end-to-end smoke: catches pickling or
# per-target seeding regressions in the parallel engine that unit tests
# with mocked pools would miss.
verify: test
	$(PYTHON) -c "\
	from repro.falcon import FalconParams, keygen; \
	from repro.attack import full_attack; \
	sk, pk = keygen(FalconParams.get(8), seed=b'verify'); \
	r = full_attack(sk, pk, n_traces=6000, n_workers=2, message=b'verify smoke'); \
	print(r.summary()); \
	assert r.key_correct and r.forgery_verifies, 'parallel smoke attack failed'"

demo:
	$(PYTHON) examples/attack_demo.py --n 8 --traces 10000

figures:
	$(PYTHON) examples/trace_explorer.py
	$(PYTHON) examples/ntt_vs_fft.py
	$(PYTHON) examples/single_trace_ntt.py

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null || true
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
